#include "live/service.hpp"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <variant>

#include <cstdio>

#include "obs/causal.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace zombiescope::live {

namespace {

using obs::Journal;
using obs::JournalEvent;
using obs::JournalEventType;

/// CPU time this thread has consumed. Blocked waits don't accrue, so
/// for a shard worker this is pure processing cost — the number the
/// throughput bench needs on a box with fewer cores than shards.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

using SteadyClock = std::chrono::steady_clock;

std::uint64_t steady_ns(SteadyClock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

std::uint64_t elapsed_ns(SteadyClock::time_point from,
                         SteadyClock::time_point to) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

/// Sub-second latencies need more than to_string's 6 decimals.
std::string format_seconds(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9f", seconds);
  return buf;
}

void append_kv(std::string& out, std::string_view key, std::string_view value,
               bool quote) {
  out += '"';
  out += key;
  out += "\":";
  if (quote) out += '"';
  out += value;
  if (quote) out += '"';
}

std::string transition_json(std::string_view type, const netbase::Prefix& prefix,
                            const zombie::PeerKey& peer,
                            netbase::TimePoint withdrawn_at, netbase::TimePoint at,
                            netbase::Duration stuck_for,
                            std::uint64_t ingest_ns) {
  std::string out = "{";
  append_kv(out, "type", type, true);
  out += ',';
  append_kv(out, "prefix", prefix.to_string(), true);
  out += ',';
  append_kv(out, "peer_asn", std::to_string(peer.asn), false);
  out += ',';
  append_kv(out, "peer_address", peer.address.to_string(), true);
  out += ',';
  append_kv(out, "withdrawn_at", std::to_string(withdrawn_at), false);
  out += ',';
  append_kv(out, type == "die" ? "resolved_at" : "raised_at", std::to_string(at),
            false);
  if (type == "die") {
    out += ',';
    append_kv(out, "stuck_seconds", std::to_string(stuck_for), false);
  }
  if (ingest_ns != 0) {
    // steady_clock ns of the feed ingest that triggered this
    // transition. Only comparable inside the emitting process — the
    // loopback subscriber (live/loopback.hpp) uses it to measure true
    // end-to-end delivery latency; remote clients should ignore it.
    out += ',';
    append_kv(out, "ingest_ns", std::to_string(ingest_ns), false);
  }
  out += '}';
  return out;
}

}  // namespace

std::size_t shard_for(const netbase::Prefix& prefix, std::size_t shards) {
  // FNV-1a, not std::hash: the mapping must be identical across
  // processes so per-shard stats line up between a daemon and an
  // offline replay of the same feed.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  const netbase::IpAddress& address = prefix.address();
  mix(static_cast<std::uint8_t>(address.family()));
  for (int i = 0; i < address.byte_length(); ++i) {
    mix(address.bytes()[static_cast<std::size_t>(i)]);
  }
  mix(static_cast<std::uint8_t>(prefix.length()));
  return shards == 0 ? 0 : static_cast<std::size_t>(h % shards);
}

LiveService::LiveService(LiveConfig config)
    : config_(std::move(config)), peer_builder_(config_.peerq) {
  if (config_.shards == 0) config_.shards = 1;
  auto& registry = obs::Registry::global();
  m_records_ = registry.counter("zs_live_records_total");
  m_drops_ = registry.counter("zs_live_ingest_dropped_total");
  m_transitions_ = registry.counter("zs_live_transitions_total");
  if (config_.peerq.enabled) {
    // Bounded cardinality by construction: four aggregates plus
    // 2 x top_k offender slots, never one series per peer. The
    // registry sweep exposes these to the TSDB as peer.*.
    m_peer_count_ = registry.gauge("zs_peer_count");
    m_peer_noisy_ = registry.gauge("zs_peer_noisy_count");
    m_peer_silent_ = registry.gauge("zs_peer_silent_count");
    m_peer_feeding_ = registry.gauge("zs_peer_feeding_count");
    for (std::size_t r = 0; r < config_.peerq.top_k; ++r) {
      m_peer_topk_ppm_.push_back(
          registry.gauge("zs_peer_topk_stuck_ppm_r" + std::to_string(r)));
      m_peer_topk_asn_.push_back(
          registry.gauge("zs_peer_topk_asn_r" + std::to_string(r)));
    }
  }
  m_lag_ = registry.histogram(
      "zs_live_ingest_lag_seconds",
      {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25,
       0.5, 1.0, 2.5, 5.0});
  if constexpr (obs::kLatHistCompiledIn) {
    // Stage latency surfaces: LatRegistry cell for /latency + bench
    // sections, registry seconds histogram for the Prometheus
    // zs_live_stage_seconds_* _quantile gauges. Both are process-wide
    // singletons keyed by name, so successive LiveService instances
    // accumulate into the same cells (benches diff snapshots instead).
    const std::vector<double> stage_buckets = {
        1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
        1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
        1.0,  2.5,    5.0};
    auto& lats = obs::LatRegistry::global();
    const auto wire = [&](StageLat& stage, const char* name) {
      stage.hist = &lats.get(std::string("live.") + name);
      stage.seconds = registry.histogram(
          std::string("zs_live_stage_seconds_") + name, stage_buckets);
    };
    wire(stage_ingest_enqueue_, "ingest_enqueue");
    wire(stage_queue_wait_, "queue_wait");
    wire(stage_detect_, "detect");
    wire(stage_publish_, "publish");
    wire(stage_fanout_, "fanout");
  }
}

LiveService::~LiveService() { stop(); }

void LiveService::resize(std::size_t shards) {
  if (started_) {
    throw std::logic_error(
        "zslive: cannot reshard a started service — withdrawal-phase state "
        "would tear mid-interval; restart with --shards");
  }
  config_.shards = shards == 0 ? 1 : shards;
}

void LiveService::start() {
  if (started_) throw std::logic_error("LiveService::start called twice");
  started_ = true;
  auto& registry = obs::Registry::global();
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(config_.queue_depth);
    shard->m_depth =
        registry.gauge("zs_live_queue_depth_shard" + std::to_string(i));
    shard->m_active =
        registry.gauge("zs_live_active_zombies_shard" + std::to_string(i));
    shard->snap = std::make_shared<const ShardSnapshot>();
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

void LiveService::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

bool LiveService::push_to(std::size_t shard, ShardItem&& item) {
  Shard& s = *shards_[shard];
  const bool is_record = item.kind == ShardItem::Kind::kRecord;
  const netbase::TimePoint ts =
      is_record ? mrt::record_timestamp(item.record) : item.advance_to;
  item.enqueued = SteadyClock::now();
  if (item.ingest == SteadyClock::time_point{}) item.ingest = item.enqueued;
  if (is_record) {
    s.submitted.fetch_add(1, std::memory_order_relaxed);
    // Feed read → shard enqueue (parse, routing, per-shard splitting).
    stage_ingest_enqueue_.record_ns(elapsed_ns(item.ingest, item.enqueued));
  }
  const bool ok = config_.block_on_full || !is_record
                      ? s.queue.push_blocking(std::move(item))
                      : s.queue.try_push(std::move(item));
  if (ok) return true;
  const std::uint64_t total = s.dropped.fetch_add(1, std::memory_order_relaxed) + 1;
  m_drops_.inc();
  auto& journal = Journal::global();
  // Sampled: the first drop and every 1024th after — a saturated feed
  // must not saturate the journal too.
  if (journal.enabled(obs::kCatLive) && (total == 1 || (total & 1023u) == 0)) {
    JournalEvent ev;
    ev.type = JournalEventType::kLiveIngestDropped;
    ev.time = ts;
    ev.a = static_cast<std::int64_t>(shard);
    ev.b = static_cast<std::int64_t>(total);
    journal.emit<obs::kCatLive>(ev);
  }
  return false;
}

bool LiveService::submit(const mrt::MrtRecord& record) {
  return submit(FeedItem{record, SteadyClock::now()});
}

bool LiveService::submit(FeedItem&& fed) {
  if (!started_) throw std::logic_error("LiveService::submit before start()");
  if (fed.ingest == SteadyClock::time_point{}) fed.ingest = SteadyClock::now();
  mrt::MrtRecord& record = fed.record;
  const auto push_record = [this, ingest = fed.ingest](std::size_t shard,
                                                       mrt::MrtRecord&& copy) {
    ShardItem item;
    item.kind = ShardItem::Kind::kRecord;
    item.record = std::move(copy);
    item.ingest = ingest;
    return push_to(shard, std::move(item));
  };

  if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record)) {
    const std::size_t prefixes =
        msg->update.announced.size() + msg->update.withdrawn.size();
    if (config_.shards == 1 || prefixes <= 1) {
      std::size_t shard = 0;
      if (!msg->update.withdrawn.empty()) {
        shard = shard_for(msg->update.withdrawn.front(), config_.shards);
      } else if (!msg->update.announced.empty()) {
        shard = shard_for(msg->update.announced.front(), config_.shards);
      }
      return push_record(shard, std::move(record));
    }
    // The message's prefixes may span shards: split it into per-shard
    // copies carrying only that shard's prefixes, so each detector
    // sees exactly its partition and nothing else.
    std::vector<std::vector<netbase::Prefix>> announced(config_.shards);
    std::vector<std::vector<netbase::Prefix>> withdrawn(config_.shards);
    for (const auto& prefix : msg->update.announced) {
      announced[shard_for(prefix, config_.shards)].push_back(prefix);
    }
    for (const auto& prefix : msg->update.withdrawn) {
      withdrawn[shard_for(prefix, config_.shards)].push_back(prefix);
    }
    bool ok = true;
    for (std::size_t i = 0; i < config_.shards; ++i) {
      if (announced[i].empty() && withdrawn[i].empty()) continue;
      mrt::Bgp4mpMessage piece = *msg;
      piece.update.announced = std::move(announced[i]);
      piece.update.withdrawn = std::move(withdrawn[i]);
      ok = push_record(i, mrt::MrtRecord{std::move(piece)}) && ok;
    }
    return ok;
  }
  if (const auto* rib = std::get_if<mrt::RibEntryRecord>(&record)) {
    return push_record(shard_for(rib->prefix, config_.shards),
                       std::move(record));
  }
  // State changes and peer index tables concern every shard: a session
  // reset clears that peer's watches wherever its prefixes live.
  bool ok = true;
  for (std::size_t i = 0; i < config_.shards; ++i) {
    ok = push_record(i, mrt::MrtRecord{record}) && ok;
  }
  return ok;
}

void LiveService::expect(const beacon::BeaconEvent& event) {
  if (!started_) throw std::logic_error("LiveService::expect before start()");
  const netbase::TimePoint deadline =
      event.withdraw_time + config_.detector.threshold;
  netbase::TimePoint cur = max_deadline_.load(std::memory_order_relaxed);
  while (deadline > cur && !max_deadline_.compare_exchange_weak(
                               cur, deadline, std::memory_order_relaxed)) {
  }
  ShardItem item;
  item.kind = ShardItem::Kind::kExpect;
  item.event = event;
  push_to(shard_for(event.prefix, config_.shards), std::move(item));
}

void LiveService::finalize(netbase::TimePoint at) {
  if (!started_) return;
  if (at == 0) at = max_deadline_.load(std::memory_order_relaxed) + 1;
  std::vector<std::uint64_t> want(config_.shards, 0);
  std::vector<bool> delivered(config_.shards, false);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    want[i] = shards_[i]->finalize_acks.load(std::memory_order_acquire) + 1;
    ShardItem item;
    item.kind = ShardItem::Kind::kAdvance;
    item.advance_to = at;
    // Through push_to so the item carries real enqueue/ingest stamps:
    // transitions fired by this advance attribute their ingest_ns to
    // the finalize call (non-records always push_blocking there).
    delivered[i] = push_to(i, std::move(item));
  }
  for (std::size_t i = 0; i < config_.shards; ++i) {
    if (!delivered[i]) continue;  // queue closed under us; worker is gone
    while (shards_[i]->finalize_acks.load(std::memory_order_acquire) < want[i]) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (config_.peerq.enabled) {
    // Converge pass: every cycle is closed now, so apply the raw
    // memoryless NoisyPeerFilter rule and flush the dwell hysteresis —
    // after a replay the live noisy set equals the batch one exactly.
    const std::lock_guard<std::mutex> lock(peer_mu_);
    (void)peers_locked(/*converge=*/true);
  }
}

void LiveService::worker_loop(std::size_t shard) {
  Shard& s = *shards_[shard];
  zombie::RealTimeZombieDetector detector(config_.detector);
  std::set<std::pair<netbase::Prefix, zombie::PeerKey>> resurrected_keys;
  std::set<std::pair<netbase::Prefix, zombie::PeerKey>> emerged;
  std::uint64_t emerged_n = 0;
  std::uint64_t resurrected_n = 0;
  std::uint64_t died_n = 0;
  std::uint64_t epoch = 0;
  netbase::TimePoint clock = 0;
  bool dirty = false;
  // Feed-ingest stamp of the item being processed right now: the
  // transition callbacks below embed it in the SSE JSON so a loopback
  // subscriber can compute end-to-end delivery latency.
  std::uint64_t cur_ingest_ns = 0;
  auto& journal = Journal::global();
  const netbase::Duration threshold = config_.detector.threshold;
  // Worker-private peer-quality accumulator (live/peerq.hpp) — same
  // ownership story as the detector, shared only via snapshots.
  const bool peerq_on = config_.peerq.enabled;
  PeerQAccumulator peerq;
  std::uint64_t peerq_epoch = 0;
  auto last_peerq_pub = SteadyClock::now();

  // Expect events are buffered and handed to the detector in stream
  // order, not registration order: the detector keeps one watch per
  // prefix and a new expect() supersedes the old one (prefix recycled),
  // so registering a whole beacon schedule upfront would wipe every
  // cycle's watch except the last before its deadline could fire. Each
  // event is released only once the shard's stream time reaches its
  // announce_time, after advancing the detector there so the previous
  // cycle's deadline fires first.
  struct PendingExpect {
    beacon::BeaconEvent event;
    std::uint64_t seq = 0;  // registration order breaks announce_time ties
  };
  const auto later = [](const PendingExpect& a, const PendingExpect& b) {
    if (a.event.announce_time != b.event.announce_time)
      return a.event.announce_time > b.event.announce_time;
    return a.seq > b.seq;
  };
  std::priority_queue<PendingExpect, std::vector<PendingExpect>, decltype(later)>
      pending(later);
  std::uint64_t pending_seq = 0;
  const auto deliver_expects_until = [&](netbase::TimePoint t) {
    while (!pending.empty() && pending.top().event.announce_time <= t) {
      const beacon::BeaconEvent event = pending.top().event;
      pending.pop();
      detector.advance(event.announce_time);
      detector.expect(event);
      if (peerq_on) {
        // Mirror the detector exactly: the cycle opens where the watch
        // does, and superseded events are skipped inside on_expect —
        // the closed-cycle sum is the batch announcement denominator.
        peerq.advance(event.announce_time);
        peerq.on_expect(event, threshold);
      }
    }
  };

  detector.on_alert([&](const zombie::ZombieAlert& alert) {
    // The deadline check always stamps raised_at = withdrawn_at +
    // threshold; anything later is a route that came back *after* the
    // interval had already passed clean — live-only, excluded from the
    // batch-equivalent emerge set.
    const bool resurrect = alert.raised_at > alert.withdrawn_at + threshold;
    const auto key = std::make_pair(alert.prefix, alert.peer);
    if (resurrect) {
      resurrected_keys.insert(key);
      ++resurrected_n;
    } else {
      emerged.insert(key);
      ++emerged_n;
      // One batch-equivalent ZombieRoute — the stuck-probability
      // numerator. Resurrections are live-only and excluded, exactly
      // as the batch pipeline never counts them.
      if (peerq_on) peerq.on_stuck(alert);
    }
    m_transitions_.inc();
    if (journal.enabled(obs::kCatLive)) {
      JournalEvent ev;
      ev.type = resurrect ? JournalEventType::kLiveZombieResurrected
                          : JournalEventType::kLiveZombieEmerged;
      ev.time = alert.raised_at;
      ev.has_prefix = true;
      ev.prefix = alert.prefix;
      ev.has_peer = true;
      ev.peer_asn = alert.peer.asn;
      ev.peer_address = alert.peer.address;
      ev.a = resurrect ? alert.raised_at : threshold;
      ev.b = alert.withdrawn_at;
      journal.emit<obs::kCatLive>(ev);
    }
    events_.publish(resurrect ? "resurrect" : "emerge",
                    transition_json(resurrect ? "resurrect" : "emerge",
                                    alert.prefix, alert.peer,
                                    alert.withdrawn_at, alert.raised_at, 0,
                                    cur_ingest_ns));
    dirty = true;
  });
  detector.on_resolution([&](const zombie::ZombieResolution& resolution) {
    ++died_n;
    resurrected_keys.erase({resolution.prefix, resolution.peer});
    m_transitions_.inc();
    if (journal.enabled(obs::kCatLive)) {
      JournalEvent ev;
      ev.type = JournalEventType::kLiveZombieDied;
      ev.time = resolution.resolved_at;
      ev.has_prefix = true;
      ev.prefix = resolution.prefix;
      ev.has_peer = true;
      ev.peer_asn = resolution.peer.asn;
      ev.peer_address = resolution.peer.address;
      ev.a = resolution.withdrawn_at;
      ev.b = resolution.stuck_for();
      journal.emit<obs::kCatLive>(ev);
    }
    events_.publish("die", transition_json("die", resolution.prefix,
                                           resolution.peer,
                                           resolution.withdrawn_at,
                                           resolution.resolved_at,
                                           resolution.stuck_for(),
                                           cur_ingest_ns));
    dirty = true;
  });

  const auto publish = [&](bool force_peerq = false) {
    const auto publish_start = SteadyClock::now();
    auto next = std::make_shared<ShardSnapshot>();
    next->epoch = ++epoch;
    next->clock = clock;
    for (const auto& alert : detector.active_zombies()) {
      next->zombies.push_back(
          {alert, resurrected_keys.contains({alert.prefix, alert.peer})});
    }
    next->emerged_pairs.assign(emerged.begin(), emerged.end());
    next->processed = s.processed.load(std::memory_order_relaxed);
    next->emerged = emerged_n;
    next->resurrected = resurrected_n;
    next->died = died_n;
    s.m_active.set(static_cast<std::int64_t>(next->zombies.size()));
    // The peer-quality snapshot rides the same lock but is throttled:
    // copied out on classifier-relevant changes (new peer, stuck
    // route, cycle close, session reset) at most every 100 ms — a
    // replay closes cycles far faster than any poller reads — on the
    // forced finalize path, or at most 1 s behind, so the full-table
    // copy stays off the per-batch cost the peerq_overhead bench
    // gates.
    std::shared_ptr<const PeerQShardSnapshot> peerq_next;
    const std::uint64_t since_pub_ns =
        elapsed_ns(last_peerq_pub, publish_start);
    if (peerq_on &&
        (force_peerq ||
         (peerq.publish_due() && since_pub_ns >= 100'000'000ull) ||
         since_pub_ns >= 1'000'000'000ull)) {
      peerq_next = peerq.snapshot(clock, ++peerq_epoch);
      last_peerq_pub = publish_start;
    }
    {
      const std::lock_guard<std::mutex> lock(s.snap_mu);
      s.snap = std::shared_ptr<const ShardSnapshot>(std::move(next));
      if (peerq_next) s.peerq_snap = std::move(peerq_next);
    }
    const auto published_at = SteadyClock::now();
    s.last_publish_ns.store(steady_ns(published_at),
                            std::memory_order_relaxed);
    stage_publish_.record_ns(elapsed_ns(publish_start, published_at));
    dirty = false;
  };
  publish();

  const auto process = [&](ShardItem& item) {
    const auto dequeued = SteadyClock::now();
    const std::uint64_t wait_ns = elapsed_ns(item.enqueued, dequeued);
    m_lag_.observe(static_cast<double>(wait_ns) * 1e-9);
    s.lag_hist.record(wait_ns);
    stage_queue_wait_.record_ns(wait_ns);
    cur_ingest_ns = steady_ns(item.ingest);
    switch (item.kind) {
      case ShardItem::Kind::kExpect:
        pending.push({item.event, pending_seq++});
        deliver_expects_until(clock);  // late registration: already due
        break;
      case ShardItem::Kind::kAdvance:
        deliver_expects_until(item.advance_to);
        clock = std::max(clock, item.advance_to);
        detector.advance(item.advance_to);
        if (peerq_on) peerq.advance(item.advance_to);
        // finalize() waits on the ack; both snapshots must be current
        // (the forced peerq publish is what makes the converge pass
        // see every closed cycle).
        publish(/*force_peerq=*/true);
        s.finalize_acks.fetch_add(1, std::memory_order_release);
        break;
      case ShardItem::Kind::kRecord: {
        if (obs::causal_enabled()) {
          // Replayed withdrawals get a trace root, so GET /causal and
          // zsroot see live-feed waves the same way they see simnet's.
          if (const auto* msg =
                  std::get_if<mrt::Bgp4mpMessage>(&item.record)) {
            for (const auto& prefix : msg->update.withdrawn) {
              const obs::TraceContext ctx =
                  obs::causal_begin_trace(obs::TraceKind::kWithdrawal);
              if (ctx.sampled()) {
                obs::causal_record({ctx.trace_id, prefix, msg->peer_asn,
                                    msg->local_asn, msg->timestamp, 0,
                                    obs::TraceKind::kWithdrawal,
                                    obs::HopDecision::kOriginated});
              }
            }
          }
        }
        deliver_expects_until(mrt::record_timestamp(item.record));
        clock = std::max(clock, mrt::record_timestamp(item.record));
        detector.ingest(item.record);
        if (peerq_on) {
          peerq.advance(clock);
          peerq.on_record(item.record);
        }
        if constexpr (obs::kLatHistCompiledIn) {
          stage_detect_.record_ns(elapsed_ns(dequeued, SteadyClock::now()));
        }
        s.processed.fetch_add(1, std::memory_order_relaxed);
        m_records_.inc();
        break;
      }
    }
  };

  ShardItem item;
  while (true) {
    if (!s.queue.pop_wait(item, std::chrono::milliseconds(50))) {
      if (s.queue.closed()) break;
      if (dirty) publish();
      s.m_depth.set(0);
      continue;
    }
    obs::ScopedSpan span("live.shard_batch");
    std::size_t batch = 0;
    do {
      process(item);
      ++batch;
    } while (batch < 256 && s.queue.try_pop(item));
    s.queue.notify_space();
    s.busy_ns.store(static_cast<std::uint64_t>(thread_cpu_seconds() * 1e9),
                    std::memory_order_relaxed);
    s.m_depth.set(static_cast<std::int64_t>(s.queue.approx_size()));
    // Publish after every batch, not only on transitions: pollers see
    // the stream clock and processed count move, and the epoch in
    // /live/zombies' ETag advances whenever state may have.
    publish();
  }
  if (dirty) publish();
}

std::shared_ptr<const ShardSnapshot> LiveService::snapshot(
    std::size_t shard) const {
  if (shard >= shards_.size()) return nullptr;
  const std::lock_guard<std::mutex> lock(shards_[shard]->snap_mu);
  return shards_[shard]->snap;
}

std::uint64_t LiveService::epoch() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (const auto snap = snapshot(i)) sum += snap->epoch;
  }
  return sum;
}

std::vector<LiveZombie> LiveService::zombies() const {
  std::vector<LiveZombie> out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (const auto snap = snapshot(i)) {
      out.insert(out.end(), snap->zombies.begin(), snap->zombies.end());
    }
  }
  return out;
}

std::vector<std::pair<netbase::Prefix, zombie::PeerKey>>
LiveService::emerged_pairs() const {
  std::set<std::pair<netbase::Prefix, zombie::PeerKey>> merged;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (const auto snap = snapshot(i)) {
      merged.insert(snap->emerged_pairs.begin(), snap->emerged_pairs.end());
    }
  }
  return {merged.begin(), merged.end()};
}

std::vector<ShardStats> LiveService::stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    ShardStats st;
    st.id = i;
    st.queue_depth = s.queue.approx_size();
    st.queue_capacity = s.queue.capacity();
    st.submitted = s.submitted.load(std::memory_order_relaxed);
    st.processed = s.processed.load(std::memory_order_relaxed);
    st.dropped = s.dropped.load(std::memory_order_relaxed);
    st.busy_seconds =
        static_cast<double>(s.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    if (const obs::LatSnapshot lag = s.lag_hist.snapshot(); !lag.empty()) {
      st.lag_p50 = lag.quantile_ns(0.50) * 1e-9;
      st.lag_p99 = lag.quantile_ns(0.99) * 1e-9;
    }
    if (const auto snap = snapshot(i)) {
      st.epoch = snap->epoch;
      st.active_zombies = snap->zombies.size();
    }
    out.push_back(st);
  }
  return out;
}

std::uint64_t LiveService::drops() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->dropped.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t LiveService::submitted() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->submitted.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t LiveService::processed() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->processed.load(std::memory_order_relaxed);
  }
  return sum;
}

double LiveService::max_worker_busy_seconds() const {
  double max_busy = 0.0;
  for (const auto& shard : shards_) {
    max_busy = std::max(
        max_busy,
        static_cast<double>(shard->busy_ns.load(std::memory_order_relaxed)) *
            1e-9);
  }
  return max_busy;
}

obs::LatSnapshot LiveService::lag_snapshot() const {
  obs::LatSnapshot merged;
  for (const auto& shard : shards_) {
    merged.merge(shard->lag_hist.snapshot());
  }
  return merged;
}

double LiveService::lag_quantile(double q) const {
  const obs::LatSnapshot merged = lag_snapshot();
  return merged.empty() ? 0.0 : merged.quantile_ns(q) * 1e-9;
}

std::shared_ptr<const PeerTable> LiveService::peers() const {
  const std::lock_guard<std::mutex> lock(peer_mu_);
  return peers_locked(/*converge=*/false);
}

std::shared_ptr<const PeerTable> LiveService::peers_locked(bool converge) const {
  if (!config_.peerq.enabled) {
    if (!peer_table_) peer_table_ = std::make_shared<const PeerTable>();
    return peer_table_;
  }
  std::vector<std::shared_ptr<const PeerQShardSnapshot>> snaps;
  snaps.reserve(shards_.size());
  std::uint64_t fingerprint = 0;
  netbase::TimePoint clock = 0;
  for (const auto& shard : shards_) {
    std::shared_ptr<const PeerQShardSnapshot> peerq_snap;
    std::shared_ptr<const ShardSnapshot> snap;
    {
      const std::lock_guard<std::mutex> lock(shard->snap_mu);
      peerq_snap = shard->peerq_snap;
      snap = shard->snap;
    }
    if (peerq_snap) fingerprint += peerq_snap->epoch;
    // Silence ages against the freshest stream clock — the main
    // snapshot's, which publishes every batch even when the throttled
    // peerq side does not.
    if (snap) clock = std::max(clock, snap->clock);
    snaps.push_back(std::move(peerq_snap));
  }
  const bool new_data =
      !peer_table_ || peer_table_->fingerprint != fingerprint;
  if (!converge && peer_table_ && !new_data && peer_table_->clock == clock) {
    return peer_table_;
  }
  peer_table_ = peer_builder_.build(snaps, clock, new_data, converge);
  m_peer_count_.set(static_cast<std::int64_t>(peer_table_->rows.size()));
  m_peer_noisy_.set(static_cast<std::int64_t>(peer_table_->noisy_count));
  m_peer_silent_.set(static_cast<std::int64_t>(peer_table_->silent_count));
  m_peer_feeding_.set(static_cast<std::int64_t>(peer_table_->feeding_count));
  if (!m_peer_topk_ppm_.empty()) {
    // Worst offenders by stuck probability into the fixed top-K slots;
    // unused slots read 0/-1 so dashboards can tell "no data" apart.
    std::vector<const PeerRow*> ranked;
    ranked.reserve(peer_table_->rows.size());
    for (const auto& row : peer_table_->rows) ranked.push_back(&row);
    const std::size_t k = std::min(m_peer_topk_ppm_.size(), ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(k),
                      ranked.end(), [](const PeerRow* a, const PeerRow* b) {
                        return a->probability > b->probability;
                      });
    for (std::size_t r = 0; r < m_peer_topk_ppm_.size(); ++r) {
      if (r < k) {
        m_peer_topk_ppm_[r].set(
            static_cast<std::int64_t>(ranked[r]->probability * 1e6));
        m_peer_topk_asn_[r].set(static_cast<std::int64_t>(ranked[r]->peer.asn));
      } else {
        m_peer_topk_ppm_[r].set(0);
        m_peer_topk_asn_[r].set(-1);
      }
    }
  }
  return peer_table_;
}

std::string LiveService::peers_json(bool noisy_only) const {
  return peer_table_json(*peers(), epoch(), noisy_only);
}

double LiveService::newest_publish_age_seconds() const {
  std::uint64_t newest = 0;
  for (const auto& shard : shards_) {
    newest = std::max(newest,
                      shard->last_publish_ns.load(std::memory_order_relaxed));
  }
  if (newest == 0) return -1.0;  // never published (service not started)
  const std::uint64_t now = steady_ns(SteadyClock::now());
  return now > newest ? static_cast<double>(now - newest) * 1e-9 : 0.0;
}

void LiveService::attach_http(obs::HttpServer& server,
                              double stale_after_seconds,
                              std::function<std::string()> extra_degraded) {
  server.add_endpoint("/live/zombies", [this](std::string_view) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.etag = "zslive-epoch-" + std::to_string(epoch());
    response.body = zombies_json();
    return response;
  });
  server.add_endpoint("/live/stats", [this](std::string_view) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = stats_json();
    return response;
  });
  server.add_endpoint("/peers", [this](std::string_view) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = peers_json(false);
    return response;
  });
  server.add_endpoint("/peers/noisy", [this](std::string_view) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = peers_json(true);
    return response;
  });
  server.add_stream("/live/events", &events_);
  if constexpr (obs::kLatHistCompiledIn) {
    // Frame publish → copy into a subscriber's connection buffer, per
    // delivery (N subscribers record N fanout samples per frame).
    events_.set_latency_sink(
        [this](std::uint64_t ns) { stage_fanout_.record_ns(ns); });
  }
  if (stale_after_seconds > 0.0 || extra_degraded) {
    // Readiness override (registration overrides the built-in
    // liveness /healthz): degraded once no shard has published a
    // snapshot within the threshold — workers publish after every
    // batch and on the 50 ms idle tick, so a healthy instance is
    // never more than ~a tick stale — or once the composed
    // extra_degraded probe (zslived: firing zstsdb alerts) reports a
    // reason.
    server.add_endpoint(
        "/healthz",
        [this, stale_after_seconds,
         extra_degraded = std::move(extra_degraded)](std::string_view) {
          obs::HttpResponse response;
          response.content_type = "application/json";
          const double age = newest_publish_age_seconds();
          const bool stale = stale_after_seconds > 0.0 &&
                             (age < 0.0 || age > stale_after_seconds);
          const std::string extra =
              extra_degraded ? extra_degraded() : std::string();
          if (stale || !extra.empty()) {
            std::string reason;
            if (stale) {
              reason =
                  "newest shard snapshot is " +
                  (age < 0.0 ? std::string("absent (no shard ever published)")
                             : format_seconds(age) + "s old (stale-after " +
                                   format_seconds(stale_after_seconds) + "s)");
            }
            if (!extra.empty()) {
              if (!reason.empty()) reason += "; ";
              reason += extra;
            }
            response.status = 503;
            response.body = "{\"status\":\"degraded\",\"reason\":\"" + reason +
                            "\",\"snapshot_age_seconds\":" +
                            format_seconds(age < 0.0 ? -1.0 : age) + "}\n";
          } else {
            response.body = "{\"status\":\"ok\",\"snapshot_age_seconds\":" +
                            format_seconds(age) + "}\n";
          }
          return response;
        });
  }
}

std::string LiveService::zombies_json() const {
  std::uint64_t emerged_total = 0;
  std::uint64_t resurrected_total = 0;
  std::uint64_t died_total = 0;
  netbase::TimePoint clock = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (const auto snap = snapshot(i)) {
      emerged_total += snap->emerged;
      resurrected_total += snap->resurrected;
      died_total += snap->died;
      clock = std::max(clock, snap->clock);
    }
  }
  std::string out = "{";
  append_kv(out, "epoch", std::to_string(epoch()), false);
  out += ',';
  append_kv(out, "shards", std::to_string(shards_.size()), false);
  out += ',';
  append_kv(out, "clock", std::to_string(clock), false);
  out += ',';
  append_kv(out, "emerged_total", std::to_string(emerged_total), false);
  out += ',';
  append_kv(out, "resurrected_total", std::to_string(resurrected_total), false);
  out += ',';
  append_kv(out, "died_total", std::to_string(died_total), false);
  out += ",\"zombies\":[";
  const std::vector<LiveZombie> zs = zombies();
  // Supporting-peer provenance (peerq): for each stuck prefix, which
  // peers confirm it, and what fraction of the *non-noisy* peer
  // universe that is — the paper's argument that a zombie seen only by
  // noisy peers is probably not a zombie at all.
  std::shared_ptr<const PeerTable> table;
  std::set<zombie::PeerKey> noisy;
  std::map<netbase::Prefix, std::set<zombie::PeerKey>> support;
  if (config_.peerq.enabled) {
    table = peers();
    noisy = table->noisy_set();
    for (const auto& z : zs) support[z.alert.prefix].insert(z.alert.peer);
  }
  bool first = true;
  for (const auto& z : zs) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_kv(out, "prefix", z.alert.prefix.to_string(), true);
    out += ',';
    append_kv(out, "peer_asn", std::to_string(z.alert.peer.asn), false);
    out += ',';
    append_kv(out, "peer_address", z.alert.peer.address.to_string(), true);
    out += ',';
    append_kv(out, "withdrawn_at", std::to_string(z.alert.withdrawn_at), false);
    out += ',';
    append_kv(out, "raised_at", std::to_string(z.alert.raised_at), false);
    out += ',';
    append_kv(out, "resurrected", z.resurrected ? "true" : "false", false);
    out += ',';
    append_kv(out, "stuck_path", z.alert.stuck_path.to_string(), true);
    if (table) {
      const auto& supporters = support[z.alert.prefix];
      std::size_t non_noisy_support = 0;
      for (const auto& peer : supporters) {
        if (!noisy.contains(peer)) ++non_noisy_support;
      }
      const std::size_t universe = table->rows.size() - noisy.size();
      const double confidence =
          universe == 0 ? 0.0
                        : static_cast<double>(non_noisy_support) /
                              static_cast<double>(universe);
      out += ',';
      append_kv(out, "support_peers", std::to_string(supporters.size()), false);
      out += ',';
      append_kv(out, "support_non_noisy", std::to_string(non_noisy_support),
                false);
      out += ',';
      append_kv(out, "confidence", format_seconds(confidence), false);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string LiveService::stats_json() const {
  std::string out = "{";
  append_kv(out, "epoch", std::to_string(epoch()), false);
  out += ',';
  append_kv(out, "submitted", std::to_string(submitted()), false);
  out += ',';
  append_kv(out, "processed", std::to_string(processed()), false);
  out += ',';
  append_kv(out, "drops_total", std::to_string(drops()), false);
  out += ',';
  append_kv(out, "sse_published", std::to_string(events_.published()), false);
  out += ',';
  // Service-wide ingest-lag rollup: every shard's histogram merged
  // bucket-wise (no sort, no per-scrape allocation proportional to
  // sample count).
  const obs::LatSnapshot lag = lag_snapshot();
  append_kv(out, "lag_p50",
            format_seconds(lag.empty() ? 0.0 : lag.quantile_ns(0.50) * 1e-9),
            false);
  out += ',';
  append_kv(out, "lag_p99",
            format_seconds(lag.empty() ? 0.0 : lag.quantile_ns(0.99) * 1e-9),
            false);
  // Per-stage pipeline latency (seconds). These are the process-wide
  // LatRegistry cells — "live.e2e" is recorded by the loopback
  // subscriber when one is running, so its absence just means nobody
  // is measuring delivery.
  out += ",\"stages\":{";
  {
    bool first_stage = true;
    for (const auto& [name, snap] : obs::LatRegistry::global().snapshot_all()) {
      if (name.rfind("live.", 0) != 0) continue;
      if (!first_stage) out += ',';
      first_stage = false;
      out += '"';
      out += name.substr(5);
      out += "\":{";
      append_kv(out, "count", std::to_string(snap.count), false);
      out += ',';
      append_kv(out, "p50", format_seconds(snap.quantile_ns(0.50) * 1e-9),
                false);
      out += ',';
      append_kv(out, "p95", format_seconds(snap.quantile_ns(0.95) * 1e-9),
                false);
      out += ',';
      append_kv(out, "p99", format_seconds(snap.quantile_ns(0.99) * 1e-9),
                false);
      out += '}';
    }
  }
  out += '}';
  out += ",\"shards\":[";
  bool first = true;
  for (const auto& st : stats()) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_kv(out, "id", std::to_string(st.id), false);
    out += ',';
    append_kv(out, "queue_depth", std::to_string(st.queue_depth), false);
    out += ',';
    append_kv(out, "queue_capacity", std::to_string(st.queue_capacity), false);
    out += ',';
    append_kv(out, "submitted", std::to_string(st.submitted), false);
    out += ',';
    append_kv(out, "processed", std::to_string(st.processed), false);
    out += ',';
    append_kv(out, "dropped", std::to_string(st.dropped), false);
    out += ',';
    append_kv(out, "epoch", std::to_string(st.epoch), false);
    out += ',';
    append_kv(out, "active_zombies", std::to_string(st.active_zombies), false);
    out += ',';
    append_kv(out, "busy_seconds", std::to_string(st.busy_seconds), false);
    out += ',';
    append_kv(out, "lag_p50", format_seconds(st.lag_p50), false);
    out += ',';
    append_kv(out, "lag_p99", format_seconds(st.lag_p99), false);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace zombiescope::live

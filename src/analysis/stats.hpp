// analysis/stats.hpp — tiny statistics toolkit used by the benchmark
// harnesses to print the paper's CDFs and tables.

#pragma once

#include <span>
#include <string>
#include <vector>

namespace zombiescope::analysis {

/// An empirical CDF over a sample.
class Cdf {
 public:
  explicit Cdf(std::vector<double> values);

  template <typename T>
  static Cdf of(std::span<const T> values) {
    std::vector<double> v(values.begin(), values.end());
    return Cdf(std::move(v));
  }

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  /// Fraction of samples <= x.
  double at(double x) const;

  /// The q-quantile (0 <= q <= 1), nearest-rank.
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;
  double median() const { return quantile(0.5); }

  /// Evenly spaced (x, F(x)) points for plotting/printing.
  std::vector<std::pair<double, double>> points(int count = 20) const;

  const std::vector<double>& sorted_values() const { return values_; }

 private:
  std::vector<double> values_;  // sorted
};

/// Renders an ASCII table: column headers + string rows, padded.
std::string render_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows);

/// Renders a CDF as an ASCII series "x -> percent".
std::string render_cdf(const Cdf& cdf, const std::string& x_label, int points = 12);

/// Formats a double with fixed precision.
std::string fmt(double value, int precision = 2);

/// Formats a fraction as "12.34%".
std::string pct(double fraction, int precision = 2);

}  // namespace zombiescope::analysis

// fig1_partial_outage — reenacts Figure 1 of the paper step by step:
// a zombie more-specific at a dominant AS pulls traffic into a
// forwarding loop, causing a partial outage for the new owner of the
// covering prefix.
//
// Build & run:  ./build/examples/fig1_partial_outage

#include <cstdio>

#include "netbase/rng.hpp"
#include "simnet/dataplane.hpp"

using namespace zombiescope;

int main() {
  using topology::Relationship;

  // The cast of Fig. 1: AS1 originally advertises 2001:db8::/48 (it
  // owns the covering /32); ASX is its upstream; AS3 is the dominant
  // transit (Tier 1 / IXP); ASY is where the user sits; AS2 buys the
  // /32 from AS1.
  topology::Topology topo;
  topo.add_as({3, 1, "AS3 (dominant)"});
  topo.add_as({900, 2, "ASX"});
  topo.add_as({901, 2, "ASY"});
  topo.add_as({1, 3, "AS1"});
  topo.add_as({2, 3, "AS2"});
  topo.add_link(3, 900, Relationship::kCustomer);
  topo.add_link(3, 901, Relationship::kCustomer);
  topo.add_link(3, 2, Relationship::kCustomer);
  topo.add_link(900, 1, Relationship::kCustomer);

  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(1));
  const auto slash48 = netbase::Prefix::parse("2001:db8::/48");
  const auto slash32 = netbase::Prefix::parse("2001:db8::/32");
  const auto victim = netbase::IpAddress::parse("2001:db8::1");
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);

  std::printf("AS1 advertises only %s (it owns the covering %s).\n",
              slash48.to_string().c_str(), slash32.to_string().c_str());
  sim.announce(t0, 1, slash48);
  sim.run_until(t0 + netbase::kHour);
  {
    simnet::DataPlane plane(sim);
    std::printf("traffic ASY -> %s: %s\n\n", victim.to_string().c_str(),
                plane.forward(901, victim).to_string().c_str());
  }

  std::printf("(1) AS1 sells the /32 and stops advertising the /48...\n");
  std::printf("(2) ...but ASX fails to propagate the withdrawal to AS3.\n");
  simnet::WithdrawalSuppression fault;
  fault.from_asn = 900;
  fault.to_asn = 3;
  fault.prefix_filter = slash48;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);
  sim.withdraw(t0 + netbase::kHour + 5 * netbase::kMinute, 1, slash48);

  std::printf("(3) AS3 retains the zombie /48 route.\n");
  std::printf("(4) AS2 starts announcing the /32...\n");
  sim.announce(t0 + netbase::kHour + 30 * netbase::kMinute, 2, slash32);
  std::printf("(5) ...which propagates to the rest of the ASes.\n\n");
  sim.run_until(t0 + 3 * netbase::kHour);

  std::printf("control plane now:\n");
  std::printf("  AS3  has /48 route: %s (ZOMBIE)\n",
              sim.router(3).best(slash48) != nullptr ? "yes" : "no");
  std::printf("  ASX  has /48 route: %s\n",
              sim.router(900).best(slash48) != nullptr ? "yes" : "no");
  std::printf("  AS3  has /32 route: %s\n\n",
              sim.router(3).best(slash32) != nullptr ? "yes" : "no");

  simnet::DataPlane plane(sim);
  std::printf("(6) a user within ASY sends traffic to %s:\n", victim.to_string().c_str());
  const auto looped = plane.forward(901, victim);
  std::printf("(7) %s\n", looped.to_string().c_str());
  std::printf("    (longest-prefix match at AS3 picks the zombie /48 toward ASX;\n"
              "     ASX only has the /32 back via AS3 — packets bounce until TTL dies)\n\n");

  const auto fine = plane.forward(901, netbase::IpAddress::parse("2001:db8:ffff::1"));
  std::printf("traffic to the rest of AS2's /32 is unaffected (partial outage):\n  %s\n",
              fine.to_string().c_str());
  return 0;
}


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zombie/CMakeFiles/zs_zombie.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/zs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/collector/CMakeFiles/zs_collector.dir/DependInfo.cmake"
  "/root/repo/build/src/beacon/CMakeFiles/zs_beacon.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/zs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/zs_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/zs_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/zs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/zs_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// zombie/realtime.hpp — streaming (online) zombie detection.
//
// §6 of the paper: "Real-time detection of a zombie outbreak and
// identification of the AS causing it will notify the network
// operators of the infected ASes to examine and resolve the issue
// more quickly." This detector consumes MRT records incrementally,
// knows the beacon schedule, and raises an alert the moment a peer's
// route survives `threshold` past its withdrawal — plus a resolution
// event when the stuck route finally clears, which yields live zombie
// lifetimes.

#pragma once

#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "beacon/schedule.hpp"
#include "mrt/record.hpp"
#include "zombie/types.hpp"

namespace zombiescope::zombie {

/// Raised when a route outlives the threshold after its withdrawal.
struct ZombieAlert {
  netbase::Prefix prefix;
  PeerKey peer;
  netbase::TimePoint withdrawn_at = 0;
  netbase::TimePoint raised_at = 0;
  bgp::AsPath stuck_path;
};

/// Raised when a previously alerted route clears (withdrawal, session
/// flush, or a new beacon announcement superseding it).
struct ZombieResolution {
  netbase::Prefix prefix;
  PeerKey peer;
  netbase::TimePoint withdrawn_at = 0;
  netbase::TimePoint resolved_at = 0;
  netbase::Duration stuck_for() const { return resolved_at - withdrawn_at; }
};

struct RealTimeConfig {
  netbase::Duration threshold = 90 * netbase::kMinute;
  std::set<PeerKey> excluded_peers;
  std::set<bgp::Asn> excluded_peer_asns;
};

/// Online detector. Usage:
///   RealTimeZombieDetector det(config);
///   det.on_alert([](const ZombieAlert& a) { ... });
///   det.expect(event);              // register beacon schedule
///   for (record : stream) det.ingest(record);
///   det.advance(now);               // heartbeat fires due alerts
class RealTimeZombieDetector {
 public:
  explicit RealTimeZombieDetector(RealTimeConfig config) : config_(std::move(config)) {}

  void on_alert(std::function<void(const ZombieAlert&)> fn) { alert_fn_ = std::move(fn); }
  void on_resolution(std::function<void(const ZombieResolution&)> fn) {
    resolution_fn_ = std::move(fn);
  }

  /// Registers an upcoming beacon announce/withdraw pair. Superseded
  /// events are ignored per the paper's collision rule.
  void expect(const beacon::BeaconEvent& event);

  /// Feeds one record; implies advance(record timestamp).
  void ingest(const mrt::MrtRecord& record);

  /// Moves the clock forward, firing alerts whose deadline passed.
  void advance(netbase::TimePoint now);

  /// Currently stuck (alerted, unresolved) routes.
  std::vector<ZombieAlert> active_zombies() const;

  int alerts_raised() const { return alerts_raised_; }
  int resolutions() const { return resolutions_; }

 private:
  struct Watch {
    beacon::BeaconEvent event;
    /// Last known state per peer inside this watch.
    struct PeerState {
      bool announced = false;
      bgp::AsPath path;
      bool alerted = false;
    };
    std::map<PeerKey, PeerState> peers;
    bool deadline_fired = false;
  };

  bool excluded(const PeerKey& peer) const {
    return config_.excluded_peers.contains(peer) ||
           config_.excluded_peer_asns.contains(peer.asn);
  }
  void fire_deadline(Watch& watch);
  void resolve(Watch& watch, const PeerKey& peer, netbase::TimePoint at);

  RealTimeConfig config_;
  std::function<void(const ZombieAlert&)> alert_fn_;
  std::function<void(const ZombieResolution&)> resolution_fn_;
  /// Watches keyed by prefix; a new expect() for the same prefix
  /// supersedes the old watch (prefix recycled).
  std::map<netbase::Prefix, Watch> watches_;
  netbase::TimePoint now_ = 0;
  int alerts_raised_ = 0;
  int resolutions_ = 0;
};

}  // namespace zombiescope::zombie

file(REMOVE_RECURSE
  "libzs_collector.a"
)

// obs/benchdiff.hpp — the statistical benchmark regression gate.
//
// Loads zsobs-v1 BENCH_*.json snapshots (the files every bench binary
// and run_bench.sh leave behind) and compares a baseline group of runs
// against a candidate group. The statistics are deliberately simple
// and robust for small N:
//
//  * per metric, each group's runs are IQR-outlier-rejected (Tukey
//    fences, k = 1.5) — a cron job or page cache blip does not poison
//    the comparison;
//  * the representative value is the *minimum* of the surviving runs
//    (for time/RSS the minimum is the least-noise estimate of the
//    workload's true cost);
//  * a delta is significant when it exceeds both the configured noise
//    floor and the within-group spread (relative IQR of either group),
//    so one noisy metric cannot trip the gate;
//  * the gate trips only on *gated* metrics (wall time, peak RSS,
//    *_seconds histogram totals) regressing past the threshold.
//    Counter/gauge drift is reported as informational — across commits
//    it usually means behavior changed, not performance.
//
// Snapshots stamped with incompatible build identities (different
// compiler, build type, sanitizer, or arch — see obs/build_info.hpp)
// refuse to compare unless forced.
//
// tools/zsbenchdiff is the CLI; scripts/check_bench_regression.sh
// wires it into CI as an A/B gate.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/build_info.hpp"

namespace zombiescope::obs {

// --- minimal JSON reader (zsobs-v1 snapshots only) ------------------

/// A parsed JSON value. Numbers are doubles (counter magnitudes in the
/// snapshots stay well inside the 2^53 exact-integer range).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Strict-enough recursive-descent parse; nullopt on malformed input.
std::optional<JsonValue> parse_json(std::string_view text);

// --- snapshot model -------------------------------------------------

/// One BENCH_*.json flattened to comparable scalars. Metric names are
/// prefixed by kind: "counter:zs_...", "gauge:zs_...",
/// "hist_sum:zs_...", "hist_count:zs_...", "phase_share:...", plus the
/// bare "wall_time_s" and "peak_rss_bytes".
struct BenchSnapshot {
  std::string path;        // where it was loaded from (diagnostics)
  std::string bench_name;  // "bench" key, else derived from filename
  BuildInfo build;
  std::map<std::string, double> metrics;
};

/// Parses one snapshot; throws std::runtime_error on malformed JSON.
BenchSnapshot parse_bench_snapshot(std::string_view json, const std::string& label);
/// Reads + parses; throws std::runtime_error on I/O or parse failure.
BenchSnapshot load_bench_snapshot(const std::string& path);

// --- comparison -----------------------------------------------------

struct DiffConfig {
  double threshold_pct = 5.0;  // gate: regression beyond this trips
  double noise_pct = 1.0;      // ignore deltas below this floor
  bool gate_counters = false;  // also gate on counter/gauge drift
  bool gate_alloc = false;     // also gate heap:total_bytes/heap:allocs
  bool gate_latency = false;   // also gate latency:*:p99_ns (delivery p99)
  bool force = false;          // compare despite incompatible builds
};

struct MetricDelta {
  std::string name;
  double base = 0.0;  // min-of-N after outlier rejection
  double cand = 0.0;
  double delta_pct = 0.0;   // (cand - base) / |base| * 100
  double spread_pct = 0.0;  // max relative IQR of the two groups
  bool significant = false;
  bool gated = false;       // metric class participates in the gate
  bool regression = false;  // significant, gated, past the threshold
};

struct BenchDiff {
  std::string bench_name;
  std::size_t baseline_runs = 0;
  std::size_t candidate_runs = 0;
  std::string incompatible;  // non-empty: why the groups refuse to compare
  std::vector<MetricDelta> deltas;  // regressions first, then by |delta|
  bool gate_tripped = false;
};

struct DiffResult {
  std::vector<BenchDiff> benches;
  bool gate_tripped = false;  // any bench tripped (or was incompatible)
};

/// Compares two groups of runs (any mix of bench names; grouped by
/// bench_name internally, names present on only one side are skipped
/// with a note in the per-bench `incompatible` field).
DiffResult diff_benches(const std::vector<BenchSnapshot>& baseline,
                        const std::vector<BenchSnapshot>& candidate,
                        const DiffConfig& config = {});

/// Aligned text table of significant deltas (all benches).
std::string render_table(const DiffResult& result, const DiffConfig& config);
/// Machine-readable result ("zsbenchdiff-v1").
std::string render_json(const DiffResult& result);

// --- statistics helpers (exposed for tests) -------------------------

/// The q-quantile of `sorted` by linear interpolation (empty -> 0).
double sorted_quantile(const std::vector<double>& sorted, double q);
/// Tukey-fence outlier rejection (k = 1.5). Groups of fewer than 4
/// runs are returned unchanged — quartiles mean nothing there.
std::vector<double> iqr_reject(std::vector<double> values);

}  // namespace zombiescope::obs

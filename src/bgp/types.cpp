#include "bgp/types.hpp"

namespace zombiescope::bgp {

std::string to_string(Origin origin) {
  switch (origin) {
    case Origin::kIgp:
      return "IGP";
    case Origin::kEgp:
      return "EGP";
    case Origin::kIncomplete:
      return "INCOMPLETE";
  }
  return "?";
}

std::string to_string(SessionState state) {
  switch (state) {
    case SessionState::kIdle:
      return "Idle";
    case SessionState::kConnect:
      return "Connect";
    case SessionState::kActive:
      return "Active";
    case SessionState::kOpenSent:
      return "OpenSent";
    case SessionState::kOpenConfirm:
      return "OpenConfirm";
    case SessionState::kEstablished:
      return "Established";
  }
  return "?";
}

}  // namespace zombiescope::bgp

#include "scenarios/faultlab.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "obs/causal.hpp"
#include "scenarios/common.hpp"
#include "topology/topology.hpp"

namespace zombiescope::scenarios {
namespace {

constexpr bgp::Asn kOriginAsn = 65000;
constexpr bgp::Asn kHubAsn = 65100;
constexpr bgp::Asn kFirstFanAsn = 65101;
constexpr bgp::Asn kFirstLeafAsn = 65200;

constexpr netbase::TimePoint kAnnounceAt = 1'000;
constexpr netbase::TimePoint kWithdrawAt = kAnnounceAt + 6 * 3'600;

const char* kBeaconPrefix = "203.0.113.0/24";

bgp::Asn chain_asn(int i) { return kOriginAsn + 1 + static_cast<bgp::Asn>(i); }
bgp::Asn fan_asn(int i) { return kFirstFanAsn + static_cast<bgp::Asn>(i); }
bgp::Asn leaf_asn(int fan, int j) {
  return kFirstLeafAsn + static_cast<bgp::Asn>(fan) * 10 + static_cast<bgp::Asn>(j);
}

/// origin -> chain[0] -> ... -> chain[L-1] -> hub -> fans -> leaves,
/// every link customer->provider going up — a tree, so every route and
/// every withdrawal has exactly one path.
topology::Topology build_palm_topology(const FaultScenarioSpec& spec) {
  topology::Topology topo;
  topo.add_as({kOriginAsn, 3, "origin"});
  for (int i = 0; i < spec.chain_len; ++i) topo.add_as({chain_asn(i), 2, "chain"});
  topo.add_as({kHubAsn, 1, "hub"});
  for (int i = 0; i < spec.fanout; ++i) {
    topo.add_as({fan_asn(i), 2, "fan"});
    for (int j = 0; j < spec.leaves_per_fan; ++j) topo.add_as({leaf_asn(i, j), 3, "leaf"});
  }

  bgp::Asn below = kOriginAsn;
  for (int i = 0; i < spec.chain_len; ++i) {
    topo.add_link(below, chain_asn(i), topology::Relationship::kProvider);
    below = chain_asn(i);
  }
  topo.add_link(below, kHubAsn, topology::Relationship::kProvider);
  for (int i = 0; i < spec.fanout; ++i) {
    topo.add_link(kHubAsn, fan_asn(i), topology::Relationship::kCustomer);
    for (int j = 0; j < spec.leaves_per_fan; ++j)
      topo.add_link(fan_asn(i), leaf_asn(i, j), topology::Relationship::kCustomer);
  }
  return topo;
}

RootCauseScore score_rootcause(const zombie::RootCauseResult& rootcause, bgp::Asn culprit,
                               bgp::Asn injected_from, bgp::Asn injected_to) {
  if (!rootcause.suspect.has_value()) return RootCauseScore::kWrong;
  if (*rootcause.suspect == culprit) return RootCauseScore::kExact;
  const bgp::Asn other = culprit == injected_from ? injected_to : injected_from;
  if (*rootcause.suspect == other) return RootCauseScore::kOffByOneUpstream;
  return RootCauseScore::kWrong;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWithdrawalSuppression:
      return "withdrawal_suppression";
    case FaultKind::kReceiveStall:
      return "receive_stall";
  }
  return "unknown";
}

std::string to_string(RootCauseScore score) {
  switch (score) {
    case RootCauseScore::kExact:
      return "exact";
    case RootCauseScore::kOffByOneUpstream:
      return "off_by_one_upstream";
    case RootCauseScore::kWrong:
      return "wrong";
  }
  return "unknown";
}

std::string FaultScenarioSpec::name() const {
  return to_string(kind) + "_chain" + std::to_string(chain_len) + "_fan" +
         std::to_string(fanout) + "x" + std::to_string(leaves_per_fan) + "_seed" +
         std::to_string(seed);
}

FaultScenarioResult run_fault_scenario(const FaultScenarioSpec& spec) {
  if (spec.chain_len < 0 || spec.fanout < 2 || spec.leaves_per_fan < 0)
    throw std::invalid_argument("faultlab: bad scenario shape " + spec.name());

  FaultScenarioResult result;
  result.spec = spec;
  result.prefix = netbase::Prefix::parse(kBeaconPrefix);
  result.injected_from = spec.chain_len == 0 ? kOriginAsn : chain_asn(spec.chain_len - 1);
  result.injected_to = kHubAsn;
  result.culprit_asn = spec.kind == FaultKind::kWithdrawalSuppression ? result.injected_from
                                                                      : result.injected_to;

  const topology::Topology topo = build_palm_topology(spec);
  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(spec.seed));

  simnet::TimeWindow window;
  window.start = kWithdrawAt;  // open end: the fault persists
  switch (spec.kind) {
    case FaultKind::kWithdrawalSuppression: {
      simnet::WithdrawalSuppression fault;
      fault.from_asn = result.injected_from;
      fault.to_asn = result.injected_to;
      fault.window = window;
      fault.probability = 1.0;
      sim.add_withdrawal_suppression(fault);
      break;
    }
    case FaultKind::kReceiveStall: {
      simnet::ReceiveStall fault;
      fault.asn = result.injected_to;
      fault.from_asn = result.injected_from;
      fault.window = window;
      sim.add_receive_stall(fault);
      break;
    }
  }

#if ZS_CAUSAL_ENABLED
  obs::CausalTracer::global().reset();
#endif

  sim.announce(kAnnounceAt, kOriginAsn, result.prefix);
  sim.withdraw(kWithdrawAt, kOriginAsn, result.prefix);
  sim.run_all();

  // Ground truth straight from router state: every non-origin AS still
  // holding a best route after the withdrawal settled is a zombie.
  zombie::ZombieOutbreak outbreak;
  outbreak.prefix = result.prefix;
  outbreak.interval_start = kAnnounceAt;
  outbreak.withdraw_time = kWithdrawAt;
  for (const bgp::Asn asn : topo.all_asns()) {
    if (asn == kOriginAsn) continue;
    const simnet::RouteEntry* best = sim.router(asn).best(result.prefix);
    if (best == nullptr) continue;
    result.zombie_asns.push_back(asn);
    zombie::ZombieRoute route;
    route.peer = zombie::PeerKey{asn, peer_address_for(asn, 0, false)};
    route.prefix = result.prefix;
    route.interval_start = kAnnounceAt;
    route.withdraw_time = kWithdrawAt;
    route.path = best->path.prepend(asn);
    outbreak.routes.push_back(std::move(route));
  }
  std::sort(result.zombie_asns.begin(), result.zombie_asns.end());

  result.expected_zombie_asns.push_back(kHubAsn);
  for (int i = 0; i < spec.fanout; ++i) {
    result.expected_zombie_asns.push_back(fan_asn(i));
    for (int j = 0; j < spec.leaves_per_fan; ++j)
      result.expected_zombie_asns.push_back(leaf_asn(i, j));
  }
  std::sort(result.expected_zombie_asns.begin(), result.expected_zombie_asns.end());

#if ZS_CAUSAL_ENABLED
  auto& tracer = obs::CausalTracer::global();
  tracer.drain();
  const std::vector<zombie::FrontierResult> frontiers =
      zombie::localize_frontiers(tracer.records_for(result.prefix));
  if (frontiers.size() == 1) {
    result.frontier = frontiers.front();
    result.localized_exact =
        result.frontier.culprits.size() == 1 &&
        result.frontier.culprits.front().from_asn == result.injected_from &&
        result.frontier.culprits.front().to_asn == result.injected_to;
  }
#endif

  result.rootcause = zombie::infer_root_cause(outbreak);
  result.rootcause_score = score_rootcause(result.rootcause, result.culprit_asn,
                                           result.injected_from, result.injected_to);
  return result;
}

std::vector<FaultScenarioSpec> default_fault_suite(int seeds) {
  if (seeds < 1) throw std::invalid_argument("faultlab: seeds must be >= 1");
  // Shapes chosen to vary chain depth (including the degenerate
  // origin->hub link), branching factor, and subtree depth.
  struct Shape {
    int chain_len, fanout, leaves_per_fan;
  };
  constexpr Shape kShapes[] = {{0, 3, 2}, {1, 2, 0}, {2, 3, 2}, {3, 4, 1}};

  std::vector<FaultScenarioSpec> suite;
  for (int s = 0; s < seeds; ++s) {
    for (const Shape& shape : kShapes) {
      for (const FaultKind kind :
           {FaultKind::kWithdrawalSuppression, FaultKind::kReceiveStall}) {
        FaultScenarioSpec spec;
        spec.seed = 0xfa1715ull * 1'000 + static_cast<std::uint64_t>(s);
        spec.kind = kind;
        spec.chain_len = shape.chain_len;
        spec.fanout = shape.fanout;
        spec.leaves_per_fan = shape.leaves_per_fan;
        suite.push_back(spec);
      }
    }
  }
  return suite;
}

FaultSuiteSummary summarize(const std::vector<FaultScenarioResult>& results) {
  FaultSuiteSummary summary;
  summary.total = static_cast<int>(results.size());
  for (const FaultScenarioResult& result : results) {
    if (result.localized_exact) ++summary.localized_exact;
    switch (result.rootcause_score) {
      case RootCauseScore::kExact:
        ++summary.rootcause_exact;
        break;
      case RootCauseScore::kOffByOneUpstream:
        ++summary.rootcause_off_by_one;
        break;
      case RootCauseScore::kWrong:
        ++summary.rootcause_wrong;
        break;
    }
  }
  return summary;
}

}  // namespace zombiescope::scenarios

file(REMOVE_RECURSE
  "CMakeFiles/root_cause.dir/root_cause.cpp.o"
  "CMakeFiles/root_cause.dir/root_cause.cpp.o.d"
  "root_cause"
  "root_cause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_cause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// netbase/ip.hpp — IP address and prefix value types (IPv4 + IPv6).
//
// These are small, regular value types used throughout the library:
// an IpAddress is a family tag plus up to 16 bytes in network order,
// and a Prefix is an address plus a prefix length, stored canonically
// (host bits zeroed). Parsing and formatting follow RFC 4291/5952 for
// IPv6 and dotted-quad for IPv4.

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace zombiescope::netbase {

enum class AddressFamily : std::uint8_t {
  kIpv4 = 4,
  kIpv6 = 6,
};

/// Returns "IPv4" or "IPv6".
std::string_view to_string(AddressFamily family);

/// An IPv4 or IPv6 address. IPv4 addresses occupy the first 4 bytes of
/// the internal array; the remaining bytes are zero.
class IpAddress {
 public:
  /// Default-constructs the IPv4 unspecified address 0.0.0.0.
  IpAddress() = default;

  /// Builds an IPv4 address from 4 bytes in network order.
  static IpAddress v4(std::array<std::uint8_t, 4> bytes);

  /// Builds an IPv4 address from a host-order 32-bit value.
  static IpAddress v4(std::uint32_t host_order);

  /// Builds an IPv6 address from 16 bytes in network order.
  static IpAddress v6(const std::array<std::uint8_t, 16>& bytes);

  /// Builds an IPv6 address from 8 host-order hextets (as written).
  static IpAddress v6(const std::array<std::uint16_t, 8>& hextets);

  /// Parses "192.0.2.1" or "2001:db8::1". Returns nullopt on failure.
  static std::optional<IpAddress> try_parse(std::string_view text);

  /// Parses like try_parse but throws std::invalid_argument on failure.
  static IpAddress parse(std::string_view text);

  AddressFamily family() const { return family_; }
  bool is_v4() const { return family_ == AddressFamily::kIpv4; }
  bool is_v6() const { return family_ == AddressFamily::kIpv6; }

  /// Number of meaningful bytes: 4 for IPv4, 16 for IPv6.
  int byte_length() const { return is_v4() ? 4 : 16; }

  /// Number of meaningful bits: 32 for IPv4, 128 for IPv6.
  int bit_length() const { return byte_length() * 8; }

  /// Raw bytes in network order (only the first byte_length() are used).
  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  /// Value of bit `index` (0 = most significant bit of the first byte).
  /// Precondition: 0 <= index < bit_length().
  bool bit(int index) const;

  /// The host-order 32-bit value of an IPv4 address.
  /// Precondition: is_v4().
  std::uint32_t v4_value() const;

  bool is_unspecified() const;

  /// Canonical text form ("192.0.2.1", RFC 5952 for IPv6).
  std::string to_string() const;

  friend auto operator<=>(const IpAddress&, const IpAddress&) = default;

 private:
  AddressFamily family_ = AddressFamily::kIpv4;
  std::array<std::uint8_t, 16> bytes_{};
};

/// A CIDR prefix: address + length, canonicalized so the bits past the
/// prefix length are always zero. The canonicalization makes Prefix a
/// regular type usable as a map key.
class Prefix {
 public:
  /// Default-constructs 0.0.0.0/0.
  Prefix() = default;

  /// Builds a prefix, zeroing host bits. Throws std::invalid_argument
  /// if the length is out of range for the address family.
  Prefix(const IpAddress& address, int length);

  /// Parses "2001:db8::/32" or "192.0.2.0/24".
  static std::optional<Prefix> try_parse(std::string_view text);
  static Prefix parse(std::string_view text);

  const IpAddress& address() const { return address_; }
  int length() const { return length_; }
  AddressFamily family() const { return address_.family(); }
  bool is_v4() const { return address_.is_v4(); }
  bool is_v6() const { return address_.is_v6(); }

  /// True if `address` is inside this prefix (same family, first
  /// length() bits match).
  bool contains(const IpAddress& address) const;

  /// True if `other` is equal to or more specific than this prefix.
  bool covers(const Prefix& other) const;

  std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  IpAddress address_;
  int length_ = 0;
};

}  // namespace zombiescope::netbase

template <>
struct std::hash<zombiescope::netbase::IpAddress> {
  std::size_t operator()(const zombiescope::netbase::IpAddress& a) const noexcept;
};

template <>
struct std::hash<zombiescope::netbase::Prefix> {
  std::size_t operator()(const zombiescope::netbase::Prefix& p) const noexcept;
};

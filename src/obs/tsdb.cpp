// obs/tsdb.cpp — zstsdb implementation. See tsdb.hpp for the model.

#include "obs/tsdb.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/http.hpp"
#include "obs/journal.hpp"

namespace zombiescope::obs {

std::int64_t parse_duration_ms(std::string_view text) {
  if (text.empty()) return 0;
  std::int64_t mult = 1000;  // bare number = seconds
  const char suffix = text.back();
  if (suffix == 's' || suffix == 'm' || suffix == 'h') {
    text.remove_suffix(1);
    mult = suffix == 's' ? 1000 : suffix == 'm' ? 60'000 : 3'600'000;
  }
  std::int64_t n = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, n);
  if (ec != std::errc() || ptr != last || n <= 0) return 0;
  if (n > (std::int64_t{1} << 40)) return 0;  // keep n * mult far from overflow
  return n * mult;
}

#if ZS_TSDB_ENABLED

namespace {

constexpr std::int64_t kNoBucket = std::int64_t{-1} << 62;

/// zs_live_records_total -> live.records_total: drop the zs_ prefix,
/// turn the first remaining '_' (the module separator) into '.'.
std::string map_registry_name(std::string_view raw) {
  if (raw.substr(0, 3) == "zs_") raw.remove_prefix(3);
  std::string out(raw);
  auto pos = out.find('_');
  if (pos != std::string::npos) out[pos] = '.';
  return out;
}

std::string fmt_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string fmt_t_seconds(std::int64_t t_ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03d",
                static_cast<long long>(t_ms / 1000),
                static_cast<int>(t_ms % 1000));
  return buf;
}

const char* kind_name(SeriesKind k) {
  return k == SeriesKind::kCounter ? "counter" : "gauge";
}

const char* state_name(AlertState s) {
  switch (s) {
    case AlertState::kOk: return "ok";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "ok";
}

}  // namespace

// ---------------------------------------------------------------------------
// Storage

/// One tier's ring. Single writer (the sampler) pushes bucket-aligned
/// points; readers copy the window lock-free (see read() for the
/// proof obligation).
struct Tsdb::Ring {
  struct Slot {
    std::atomic<std::int64_t> t{0};
    std::atomic<double> v{0.0};
  };

  Ring(std::int64_t step, std::size_t n)
      : step_ms(step), cap(n), slots(new Slot[n]) {}

  const std::int64_t step_ms;
  const std::size_t cap;
  std::unique_ptr<Slot[]> slots;
  std::atomic<std::uint64_t> head{0};  // total points ever pushed

  // Downsampling accumulator — touched only by the sampler thread.
  std::int64_t acc_bucket = kNoBucket;
  double acc_sum = 0.0;
  double acc_last = 0.0;
  std::uint32_t acc_n = 0;
  std::int64_t last_pushed_bucket = kNoBucket;

  void push(std::int64_t t, double v) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[h % cap];
    s.t.store(t, std::memory_order_relaxed);
    s.v.store(v, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  /// A bucket's point is pushed when the first sample of the *next*
  /// bucket arrives (counter: last cumulative value; gauge: mean).
  /// The last_pushed_bucket guard keeps ring timestamps strictly
  /// increasing even if the wall clock steps backwards.
  void tick(std::int64_t t_ms, double v, SeriesKind kind) {
    const std::int64_t bucket = t_ms / step_ms;
    if (acc_n > 0 && bucket < acc_bucket) return;  // clock went backwards
    if (acc_n > 0 && bucket != acc_bucket) {
      if (acc_bucket > last_pushed_bucket) {
        const double out = kind == SeriesKind::kCounter
                               ? acc_last
                               : acc_sum / static_cast<double>(acc_n);
        push(acc_bucket * step_ms, out);
        last_pushed_bucket = acc_bucket;
      }
      acc_sum = 0.0;
      acc_n = 0;
    }
    if (acc_n == 0) acc_bucket = bucket;
    acc_sum += v;
    acc_last = v;
    ++acc_n;
  }

  /// Lock-free snapshot, oldest first. Copy the window below the
  /// acquired head, then re-read the head: a slot holding index i is
  /// only reused by the write of index i+cap, which can begin no
  /// earlier than head == i+cap — so after observing head h2, every
  /// copied index >= h2 - cap + 1 is provably untorn.
  std::vector<TsdbPoint> read() const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t n = h < cap ? h : cap;
    const std::uint64_t first = h - n;
    std::vector<TsdbPoint> out;
    out.reserve(n);
    for (std::uint64_t i = first; i < h; ++i) {
      const Slot& s = slots[i % cap];
      out.push_back({s.t.load(std::memory_order_relaxed),
                     s.v.load(std::memory_order_relaxed)});
    }
    const std::uint64_t h2 = head.load(std::memory_order_acquire);
    const std::uint64_t safe_first = h2 >= cap ? h2 - cap + 1 : 0;
    if (safe_first > first) {
      out.erase(out.begin(),
                out.begin() + static_cast<std::ptrdiff_t>(safe_first - first));
    }
    return out;
  }
};

struct Tsdb::Series {
  Series(std::string n, SeriesKind k, const std::vector<TsdbTier>& tiers)
      : name(std::move(n)), kind(k) {
    rings.reserve(tiers.size());
    for (const auto& t : tiers) {
      rings.push_back(std::make_unique<Ring>(t.step_ms, t.slots));
    }
  }

  void tick(std::int64_t t_ms, double v) {
    for (auto& r : rings) r->tick(t_ms, v, kind);
    newest_sample_ms.store(t_ms, std::memory_order_relaxed);
  }

  const std::string name;
  const SeriesKind kind;
  std::vector<std::unique_ptr<Ring>> rings;  // finest first
  std::atomic<std::int64_t> newest_sample_ms{0};
};

struct Tsdb::RuleState {
  AlertState state = AlertState::kOk;
  std::int64_t since_ms = 0;          // when `state` was entered
  std::int64_t pending_since_ms = 0;  // first tick of the current breach run
  std::int64_t clear_since_ms = 0;    // first tick of the current clear run
  double last_value = 0.0;
  double last_threshold = 0.0;
  bool evaluated = false;
  // kRate bookkeeping: previous cumulative sample.
  bool have_prev = false;
  double prev_v = 0.0;
  std::int64_t prev_t_ms = 0;
};

// ---------------------------------------------------------------------------
// Lifecycle

std::vector<TsdbTier> Tsdb::default_tiers() {
  return {{1'000, 900}, {10'000, 720}, {60'000, 1440}};
}

Tsdb::Tsdb(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.tiers.empty()) cfg_.tiers = default_tiers();
  if (cfg_.cadence_ms < 10) cfg_.cadence_ms = 10;
  auto& reg = Registry::global();
  m_samples_ = reg.counter("zs_tsdb_samples_total");
  m_fired_ = reg.counter("zs_alerts_fired_total");
  m_dropped_series_ = reg.counter("zs_tsdb_series_dropped_total");
  m_active_ = reg.gauge("zs_alerts_active");
}

Tsdb::~Tsdb() { stop(); }

void Tsdb::add_probe(std::string name, SeriesKind kind,
                     std::function<double()> fn) {
  probes_.push_back({std::move(name), kind, std::move(fn)});
}

void Tsdb::add_rule(AlertRule rule) {
  if (rule.clear_threshold == AlertRule::kUnsetThreshold) {
    rule.clear_threshold = rule.threshold;
  }
  std::lock_guard<std::mutex> lock(alert_mutex_);
  rules_.push_back(std::move(rule));
  rule_states_.push_back(std::make_unique<RuleState>());
}

bool Tsdb::start() {
  if (thread_.joinable()) return false;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { sampler_loop(); });
  return true;
}

void Tsdb::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Tsdb::sampler_loop() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!stop_requested_) {
    lock.unlock();
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    sample_once(
        std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
    lock.lock();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(cfg_.cadence_ms),
                      [this] { return stop_requested_; });
  }
}

// ---------------------------------------------------------------------------
// Sampling

Tsdb::Series* Tsdb::find_or_create(std::string_view name, SeriesKind kind) {
  std::lock_guard<std::mutex> lock(series_mutex_);
  auto it = series_.find(name);
  if (it != series_.end()) return it->second.get();
  if (series_.size() >= cfg_.max_series) {
    m_dropped_series_.inc();
    return nullptr;
  }
  auto s = std::make_unique<Series>(std::string(name), kind, cfg_.tiers);
  Series* raw = s.get();
  series_.emplace(std::string(name), std::move(s));
  return raw;
}

const Tsdb::Series* Tsdb::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

void Tsdb::sample_once(std::int64_t now_ms) {
  tick_values_.clear();

  const Snapshot snap = Registry::global().snapshot();
  for (const auto& [name, v] : snap.counters) {
    tick_values_[map_registry_name(name)] = {static_cast<double>(v),
                                             SeriesKind::kCounter};
  }
  for (const auto& [name, v] : snap.gauges) {
    tick_values_[map_registry_name(name)] = {static_cast<double>(v),
                                             SeriesKind::kGauge};
  }
  // Registry histograms are skipped: the latency registry below is the
  // richer source for the same stage timings.

  // zslat quantiles over the *interval* since the previous tick, so a
  // long-lived cumulative histogram cannot freeze the series at its
  // all-time shape. Empty intervals publish nothing (the series gaps).
  auto lats = LatRegistry::global().snapshot_all();
  for (auto& [name, cur] : lats) {
    LatSnapshot interval = cur;
    for (const auto& [pname, prev] : lat_prev_) {
      if (pname == name) {
        // A reset histogram (count went down) restarts the interval.
        if (cur.count >= prev.count) interval = cur.diff_since(prev);
        break;
      }
    }
    if (interval.count == 0) continue;
    for (const auto& [q, tag] :
         {std::pair<double, const char*>{0.50, "p50"},
          std::pair<double, const char*>{0.95, "p95"},
          std::pair<double, const char*>{0.99, "p99"}}) {
      tick_values_["latency:" + name + ":" + tag] = {
          interval.quantile_ns(q) / 1e9, SeriesKind::kGauge};
    }
  }
  lat_prev_ = std::move(lats);

  for (const auto& p : probes_) {
    tick_values_[p.name] = {p.fn(), p.kind};
  }

  for (const auto& [name, vk] : tick_values_) {
    if (!std::isfinite(vk.first)) continue;
    if (Series* s = find_or_create(name, vk.second)) {
      s->tick(now_ms, vk.first);
    }
  }

  m_samples_.inc();
  evaluate_rules(now_ms);
}

// ---------------------------------------------------------------------------
// Alert engine

double Tsdb::baseline_for(const AlertRule& rule, std::int64_t now_ms,
                          bool* have) const {
  *have = false;
  const Series* s = find(rule.metric);
  if (s == nullptr || s->rings.empty()) return 0.0;
  const std::int64_t exclude_ms =
      static_cast<std::int64_t>(rule.for_seconds * 1000.0);
  const std::int64_t window_ms =
      static_cast<std::int64_t>(rule.baseline_window_seconds * 1000.0);
  const std::int64_t hi = now_ms - exclude_ms;
  const std::int64_t lo = hi - window_ms;
  double sum = 0.0;
  std::size_t n = 0;
  for (const TsdbPoint& p : s->rings.front()->read()) {
    if (p.t_ms < lo || p.t_ms > hi) continue;
    sum += p.v;
    ++n;
  }
  if (n < rule.baseline_min_samples) return 0.0;
  const double mean = sum / static_cast<double>(n);
  if (mean <= 0.0) return 0.0;
  *have = true;
  return mean;
}

void Tsdb::evaluate_rules(std::int64_t now_ms) {
  std::lock_guard<std::mutex> lock(alert_mutex_);
  auto& journal = Journal::global();
  std::size_t firing = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    RuleState& st = *rule_states_[i];
    if (st.state == AlertState::kFiring) ++firing;  // corrected below

    const auto tick = tick_values_.find(rule.metric);
    if (tick == tick_values_.end()) continue;  // no sample: hold state
    const double raw = tick->second.first;

    double value = raw;
    double threshold = rule.threshold;
    double clear = rule.clear_threshold;
    switch (rule.mode) {
      case AlertRule::Mode::kValue:
        break;
      case AlertRule::Mode::kRate: {
        if (!st.have_prev) {
          st.have_prev = true;
          st.prev_v = raw;
          st.prev_t_ms = now_ms;
          continue;
        }
        const double dt = static_cast<double>(now_ms - st.prev_t_ms) / 1000.0;
        if (dt <= 0.0) continue;
        value = raw >= st.prev_v ? (raw - st.prev_v) / dt : raw / dt;
        st.prev_v = raw;
        st.prev_t_ms = now_ms;
        break;
      }
      case AlertRule::Mode::kBaselineRatio: {
        bool have = false;
        const double baseline = baseline_for(rule, now_ms, &have);
        if (!have) continue;  // not enough history yet: hold state
        threshold = rule.threshold * baseline;
        clear = rule.clear_threshold * baseline;
        break;
      }
    }

    st.evaluated = true;
    st.last_value = value;
    st.last_threshold = threshold;

    const bool gt = rule.op == AlertRule::Op::kGt;
    const bool breach = gt ? value > threshold : value < threshold;
    const bool cleared = gt ? value <= clear : value >= clear;
    const auto for_ms = static_cast<std::int64_t>(rule.for_seconds * 1000.0);
    const auto clear_ms =
        static_cast<std::int64_t>(rule.clear_for_seconds * 1000.0);

    if (st.state != AlertState::kFiring) {
      if (breach) {
        if (st.state == AlertState::kOk) {
          st.state = AlertState::kPending;
          st.since_ms = now_ms;
          st.pending_since_ms = now_ms;
        }
        if (now_ms - st.pending_since_ms >= for_ms) {
          st.state = AlertState::kFiring;
          st.since_ms = now_ms;
          st.clear_since_ms = 0;
          ++firing;
          m_fired_.inc();
          if (journal.enabled(kCatAlert)) {
            JournalEvent ev;
            ev.type = JournalEventType::kAlertFiring;
            ev.time = now_ms / 1000;
            ev.a = static_cast<std::int64_t>(std::llround(value * 1000.0));
            ev.b = static_cast<std::int64_t>(std::llround(threshold * 1000.0));
            ev.c = static_cast<std::int64_t>(i);
            journal.emit<kCatAlert>(ev);
          }
        }
      } else if (cleared) {
        if (st.state == AlertState::kPending) {
          st.state = AlertState::kOk;
          st.since_ms = now_ms;
        }
        st.pending_since_ms = 0;
      } else if (st.state == AlertState::kPending) {
        // In the hysteresis band: hold Pending but restart its clock —
        // only an uninterrupted breach run may fire.
        st.pending_since_ms = now_ms;
      }
    } else {
      --firing;  // re-decide below
      if (cleared) {
        if (st.clear_since_ms == 0) st.clear_since_ms = now_ms;
        if (now_ms - st.clear_since_ms >= clear_ms) {
          st.state = AlertState::kOk;
          st.since_ms = now_ms;
          st.clear_since_ms = 0;
          st.pending_since_ms = 0;
          if (journal.enabled(kCatAlert)) {
            JournalEvent ev;
            ev.type = JournalEventType::kAlertResolved;
            ev.time = now_ms / 1000;
            ev.a = static_cast<std::int64_t>(std::llround(value * 1000.0));
            ev.b = static_cast<std::int64_t>(std::llround(threshold * 1000.0));
            ev.c = static_cast<std::int64_t>(i);
            journal.emit<kCatAlert>(ev);
          }
        }
      } else {
        // Breach or in-band: the clear run is broken.
        st.clear_since_ms = 0;
      }
      if (st.state == AlertState::kFiring) ++firing;
    }
  }
  m_active_.set(static_cast<std::int64_t>(firing));
}

std::vector<AlertStatus> Tsdb::alert_statuses() const {
  std::lock_guard<std::mutex> lock(alert_mutex_);
  std::vector<AlertStatus> out;
  out.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    const RuleState& st = *rule_states_[i];
    out.push_back({rule.name, rule.metric, st.state, st.last_value,
                   st.evaluated ? st.last_threshold : rule.threshold,
                   rule.for_seconds, st.since_ms});
  }
  return out;
}

std::size_t Tsdb::firing_count() const {
  std::lock_guard<std::mutex> lock(alert_mutex_);
  std::size_t n = 0;
  for (const auto& st : rule_states_) {
    if (st->state == AlertState::kFiring) ++n;
  }
  return n;
}

std::string Tsdb::firing_names() const {
  std::lock_guard<std::mutex> lock(alert_mutex_);
  std::string out;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rule_states_[i]->state != AlertState::kFiring) continue;
    if (!out.empty()) out += ',';
    out += rules_[i].name;
  }
  return out;
}

std::string Tsdb::alerts_json() const {
  const auto statuses = alert_statuses();
  std::size_t firing = 0;
  for (const auto& s : statuses) {
    if (s.state == AlertState::kFiring) ++firing;
  }
  std::string out = "{\"firing\":" + std::to_string(firing) + ",\"rules\":[";
  bool first = true;
  for (const auto& s : statuses) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + s.name + "\",\"metric\":\"" + s.metric +
           "\",\"state\":\"" + state_name(s.state) +
           "\",\"value\":" + fmt_double(s.value) +
           ",\"threshold\":" + fmt_double(s.threshold) +
           ",\"for_seconds\":" + fmt_double(s.for_seconds) +
           ",\"since\":" + std::to_string(s.since_ms / 1000) + "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Queries

std::vector<std::string> Tsdb::metric_names() const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

Tsdb::QueryResult Tsdb::query(std::string_view metric, std::int64_t range_ms,
                              std::int64_t step_ms, bool as_rate) const {
  QueryResult r;
  if (range_ms <= 0 || step_ms < 0) {
    r.status = QueryStatus::kBadRequest;
    r.error = "range must be positive and step non-negative";
    return r;
  }
  const Series* s = find(metric);
  if (s == nullptr) {
    r.status = QueryStatus::kNotFound;
    r.error = "unknown metric";
    return r;
  }
  r.kind = s->kind;
  if (as_rate && s->kind != SeriesKind::kCounter) {
    r.status = QueryStatus::kBadRequest;
    r.error = "agg=rate requires a counter series";
    return r;
  }

  // Finest tier that can cover the whole range; the coarsest when
  // nothing can.
  const Ring* ring = s->rings.back().get();
  for (const auto& t : s->rings) {
    if (t->step_ms * static_cast<std::int64_t>(t->cap) >= range_ms) {
      ring = t.get();
      break;
    }
  }
  std::int64_t eff_step = step_ms > ring->step_ms ? step_ms : ring->step_ms;
  eff_step = (eff_step + ring->step_ms - 1) / ring->step_ms * ring->step_ms;
  r.step_ms = eff_step;

  const std::int64_t now = s->newest_sample_ms.load(std::memory_order_relaxed);
  std::vector<TsdbPoint> pts = ring->read();
  // Rate derivation needs the point *before* the window for the first
  // in-window delta; over-collect by one tier step.
  const std::int64_t lo = now - range_ms - (as_rate ? ring->step_ms : 0);
  std::size_t skip = 0;
  while (skip < pts.size() && pts[skip].t_ms < lo) ++skip;
  pts.erase(pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(skip));

  if (as_rate) {
    std::vector<TsdbPoint> rates;
    rates.reserve(pts.size());
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double dt =
          static_cast<double>(pts[i].t_ms - pts[i - 1].t_ms) / 1000.0;
      if (dt <= 0.0) continue;
      // Counter reset (process restart): the new cumulative value IS
      // the increment since the reset — Prometheus rate() semantics.
      const double dv =
          pts[i].v >= pts[i - 1].v ? pts[i].v - pts[i - 1].v : pts[i].v;
      rates.push_back({pts[i].t_ms, dv / dt});
    }
    pts = std::move(rates);
    skip = 0;
    while (skip < pts.size() && pts[skip].t_ms < now - range_ms) ++skip;
    pts.erase(pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(skip));
  }

  if (eff_step > ring->step_ms && !pts.empty()) {
    // Regroup to the coarser requested step: cumulative counters keep
    // the last value per bucket, gauges and rates average.
    const bool mean = as_rate || s->kind == SeriesKind::kGauge;
    std::vector<TsdbPoint> grouped;
    std::int64_t bucket = kNoBucket;
    double sum = 0.0;
    double last = 0.0;
    std::size_t n = 0;
    auto flush = [&] {
      if (n == 0) return;
      grouped.push_back(
          {bucket * eff_step, mean ? sum / static_cast<double>(n) : last});
      sum = 0.0;
      n = 0;
    };
    for (const TsdbPoint& p : pts) {
      const std::int64_t b = p.t_ms / eff_step;
      if (n > 0 && b != bucket) flush();
      bucket = b;
      sum += p.v;
      last = p.v;
      ++n;
    }
    flush();
    pts = std::move(grouped);
  }

  r.points = std::move(pts);
  return r;
}

// ---------------------------------------------------------------------------
// HTTP

HttpResponse Tsdb::handle_query(std::string_view target) const {
  auto bad = [](std::string msg) {
    return HttpResponse{400, "application/json",
                        "{\"error\":\"" + std::move(msg) + "\"}\n", ""};
  };
  const std::string metric = query_string(target, "metric");
  if (metric.empty()) return bad("missing metric parameter");
  const std::string range_text = query_string(target, "range");
  if (range_text.empty()) return bad("missing range parameter");
  const std::int64_t range_ms = parse_duration_ms(range_text);
  if (range_ms <= 0) return bad("unparseable range (want e.g. 30s, 5m, 2h)");
  std::int64_t step_ms = 0;
  const std::string step_text = query_string(target, "step");
  if (!step_text.empty()) {
    step_ms = parse_duration_ms(step_text);
    if (step_ms <= 0) return bad("unparseable step (want e.g. 1s, 10s, 1m)");
  }
  bool as_rate = false;
  const std::string agg = query_string(target, "agg");
  if (agg == "rate") {
    as_rate = true;
  } else if (!agg.empty() && agg != "raw") {
    return bad("unknown agg (want rate or raw)");
  }

  const QueryResult q = query(metric, range_ms, step_ms, as_rate);
  if (q.status == QueryStatus::kNotFound) {
    return {404, "application/json", "{\"error\":\"unknown metric\"}\n", ""};
  }
  if (q.status == QueryStatus::kBadRequest) {
    return bad(q.error);
  }

  std::string body = "{\"metric\":\"" + metric + "\",\"kind\":\"" +
                     kind_name(q.kind) + "\",\"agg\":\"" +
                     (as_rate ? "rate" : "raw") +
                     "\",\"step_seconds\":" + fmt_double(
                         static_cast<double>(q.step_ms) / 1000.0) +
                     ",\"points\":[";
  bool first = true;
  for (const TsdbPoint& p : q.points) {
    if (!first) body += ',';
    first = false;
    body += '[';
    body += fmt_t_seconds(p.t_ms);
    body += ',';
    body += fmt_double(p.v);
    body += ']';
  }
  body += "]}\n";
  return {200, "application/json", std::move(body), ""};
}

HttpResponse Tsdb::handle_metrics(std::string_view) const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  std::string body = "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, s] : series_) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":\"" + name + "\",\"kind\":\"" + kind_name(s->kind) +
            "\"}";
  }
  body += "]}\n";
  return {200, "application/json", std::move(body), ""};
}

HttpResponse Tsdb::handle_alerts(std::string_view) const {
  return {200, "application/json", alerts_json() + "\n", ""};
}

void Tsdb::attach_http(HttpServer& server) {
  server.add_endpoint("/tsdb/query", [this](std::string_view target) {
    return handle_query(target);
  });
  server.add_endpoint("/tsdb/metrics", [this](std::string_view target) {
    return handle_metrics(target);
  });
  server.add_endpoint("/alerts", [this](std::string_view target) {
    return handle_alerts(target);
  });
}

#endif  // ZS_TSDB_ENABLED

}  // namespace zombiescope::obs

// Verifies the ZS_LATHIST_ENABLED=0 build really compiles zslat out:
// this target recompiles lathist.cpp with the macro forced to 0 (see
// tests/CMakeLists.txt) instead of linking zs_obs, so only the inline
// no-op stubs may survive. Every entry point must be callable and
// inert — stage-timing call sites guard with
// `if constexpr (kLatHistCompiledIn)` and rely on these stubs when
// they don't.

#include <gtest/gtest.h>

#include "obs/lathist.hpp"

namespace obs = zombiescope::obs;

static_assert(!obs::kLatHistCompiledIn,
              "this test must be built with ZS_LATHIST_ENABLED=0");

namespace {

TEST(ObsLatHistCompileOut, RecordingIsInert) {
  obs::LatHist hist;
  hist.record(12345);
  hist.record(~0ull);
  EXPECT_EQ(hist.count(), 0u);
  const obs::LatSnapshot snap = hist.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile_ns(0.99), 0.0);
  EXPECT_EQ(snap.mean_ns(), 0.0);
  hist.reset();
}

TEST(ObsLatHistCompileOut, SnapshotMathIsInert) {
  obs::LatSnapshot a;
  obs::LatSnapshot b;
  a.merge(b);
  EXPECT_TRUE(a.diff_since(b).empty());
  EXPECT_EQ(a.to_json(), "{}");
}

TEST(ObsLatHistCompileOut, RegistryIsInert) {
  obs::LatRegistry& reg = obs::LatRegistry::global();
  obs::LatHist& hist = reg.get("live.e2e");
  hist.record(999);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_TRUE(reg.snapshot_all().empty());
  EXPECT_EQ(reg.to_json(), "{}");
  EXPECT_TRUE(reg.to_folded().empty());
  reg.reset_all();
}

TEST(ObsLatHistCompileOut, GeometryHelpersStayUsable) {
  // The constexpr bucket math lives outside the #if so headers can use
  // it unconditionally; it must keep working in the stub build.
  EXPECT_EQ(obs::lat_bucket_index(5), 5u);
  EXPECT_LT(obs::lat_bucket_index(~0ull), obs::kLatBucketCount);
}

}  // namespace

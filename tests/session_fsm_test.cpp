// Tests for the BGP session FSM: establishment, keepalive/hold
// machinery, the zero-TCP-window zombie pathology, and the RFC 9687
// send-hold-timer remedy.

#include <gtest/gtest.h>

#include "bgp/session_fsm.hpp"

namespace zombiescope::bgp {
namespace {

using netbase::kMinute;
using netbase::TimePoint;

UpdateMessage withdrawal() {
  UpdateMessage msg;
  msg.withdrawn.push_back(netbase::Prefix::parse("2a0d:3dc1:1851::/48"));
  return msg;
}

/// A two-endpoint harness with per-side read windows (the TCP receive
/// window abstraction). advance() moves time in 1-second steps,
/// ticking both sides and shuttling messages subject to the windows.
struct Wire {
  SessionFsm a;
  SessionFsm b;
  bool a_reads = true;  // does A read what B sends?
  bool b_reads = true;  // does B read what A sends?
  TimePoint now = 0;

  Wire(FsmConfig config_a, FsmConfig config_b) : a(config_a), b(config_b) {}

  void establish() {
    a.start(now);
    b.start(now);
    a.connected(now);
    b.connected(now);
    advance(5);
    ASSERT_EQ(a.state(), FsmState::kEstablished);
    ASSERT_EQ(b.state(), FsmState::kEstablished);
  }

  void advance(netbase::Duration seconds) {
    for (netbase::Duration i = 0; i < seconds; ++i) {
      ++now;
      a.tick(now);
      b.tick(now);
      if (b_reads)
        for (const auto& message : a.drain(now, 16)) b.receive(now, message);
      if (a_reads)
        for (const auto& message : b.drain(now, 16)) a.receive(now, message);
    }
  }
};

FsmConfig plain() { return FsmConfig{90, 30, 0}; }
FsmConfig with_send_hold(netbase::Duration t) { return FsmConfig{90, 30, t}; }

TEST(SessionFsm, HandshakeReachesEstablished) {
  Wire wire(plain(), plain());
  wire.establish();
  EXPECT_EQ(wire.a.session_drops(), 0);
}

TEST(SessionFsm, KeepalivesSustainTheSession) {
  Wire wire(plain(), plain());
  wire.establish();
  wire.advance(20 * kMinute);
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished);
  EXPECT_EQ(wire.b.state(), FsmState::kEstablished);
}

TEST(SessionFsm, HoldTimerFiresWhenPeerGoesSilent) {
  Wire wire(plain(), plain());
  wire.establish();
  // B's messages stop reaching A entirely (link cut one way).
  wire.a_reads = false;
  wire.advance(91);
  EXPECT_EQ(wire.a.state(), FsmState::kIdle);
  EXPECT_EQ(wire.a.last_error(), "hold timer expired");
}

TEST(SessionFsm, UpdatesFlowWhenHealthy) {
  Wire wire(plain(), plain());
  wire.establish();
  EXPECT_TRUE(wire.a.send_update(wire.now, withdrawal()));
  wire.advance(2);
  EXPECT_EQ(wire.a.queued(), 0u);
}

TEST(SessionFsm, SendUpdateRequiresEstablished) {
  SessionFsm fsm(plain());
  EXPECT_FALSE(fsm.send_update(0, withdrawal()));
}

FsmConfig wedged_box() {
  // The buggy box: keeps generating KEEPALIVEs, never reads, and its
  // own hold timer never fires (that is the bug — a healthy box would
  // tear down when it stops processing input).
  return FsmConfig{0, 30, 0};
}

TEST(SessionFsm, ZeroWindowPathologyWithoutRfc9687) {
  // The Cartwright-Cox incident: B wedges — it keeps sending
  // KEEPALIVEs but never reads. A's withdrawals queue forever; A's
  // hold timer never fires (B's keepalives keep arriving); the session
  // stays Established indefinitely. Every route B holds is a zombie.
  Wire wire(plain(), wedged_box());
  wire.establish();
  wire.b_reads = false;  // zero receive window at B
  EXPECT_TRUE(wire.a.send_update(wire.now, withdrawal()));
  wire.advance(60 * kMinute);
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished) << "pre-9687: session never drops";
  EXPECT_GT(wire.a.queued(), 0u) << "the withdrawal is still stuck in the queue";
  EXPECT_EQ(wire.a.session_drops(), 0);
}

TEST(SessionFsm, SendHoldTimerTearsDownWedgedSession) {
  // Same pathology, with RFC 9687 enabled on A (send hold 8 minutes).
  Wire wire(with_send_hold(8 * kMinute), wedged_box());
  wire.establish();
  wire.b_reads = false;
  EXPECT_TRUE(wire.a.send_update(wire.now, withdrawal()));
  wire.advance(8 * kMinute + 30);
  EXPECT_EQ(wire.a.state(), FsmState::kIdle);
  EXPECT_EQ(wire.a.last_error(), "send hold timer expired (RFC 9687)");
  EXPECT_EQ(wire.a.session_drops(), 1);
}

TEST(SessionFsm, SendHoldTimerDoesNotFireUnderNormalOperation) {
  Wire wire(with_send_hold(8 * kMinute), with_send_hold(8 * kMinute));
  wire.establish();
  for (int i = 0; i < 30; ++i) {
    wire.a.send_update(wire.now, withdrawal());
    wire.advance(2 * kMinute);
  }
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished);
  EXPECT_EQ(wire.a.session_drops(), 0);
}

TEST(SessionFsm, SendHoldTimerRestartsOnPartialProgress) {
  // The peer reads slowly but steadily: as long as the queue makes
  // progress, RFC 9687 must not fire.
  Wire wire(with_send_hold(5 * kMinute), plain());  // healthy peer
  wire.establish();
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 40; ++i) wire.a.send_update(wire.now, withdrawal());
    wire.advance(4 * kMinute);  // drain rate 16/s clears each burst
  }
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished);
}

TEST(SessionFsm, NotificationDropsSession) {
  Wire wire(plain(), plain());
  wire.establish();
  wire.b.receive(wire.now, FsmMessage{MessageType::kNotification, std::nullopt});
  EXPECT_EQ(wire.b.state(), FsmState::kIdle);
  EXPECT_EQ(wire.b.last_error(), "NOTIFICATION from peer");
}

TEST(SessionFsm, StopClearsQueues) {
  Wire wire(plain(), plain());
  wire.establish();
  wire.b_reads = false;
  wire.a.send_update(wire.now, withdrawal());
  EXPECT_GT(wire.a.queued(), 0u);
  wire.a.stop(wire.now);
  EXPECT_EQ(wire.a.state(), FsmState::kIdle);
  EXPECT_EQ(wire.a.queued(), 0u);
}

TEST(SessionFsm, StateNames) {
  EXPECT_EQ(to_string(FsmState::kEstablished), "Established");
  EXPECT_EQ(to_string(FsmState::kOpenConfirm), "OpenConfirm");
}

TEST(SessionFsm, NotificationInOpenSentReturnsToIdle) {
  SessionFsm fsm(plain());
  fsm.start(0);
  fsm.connected(0);
  ASSERT_EQ(fsm.state(), FsmState::kOpenSent);
  fsm.receive(1, FsmMessage{MessageType::kNotification, std::nullopt, std::nullopt});
  EXPECT_EQ(fsm.state(), FsmState::kIdle);
  // Never Established, so this is a failed attempt, not a session drop.
  EXPECT_EQ(fsm.session_drops(), 0);
}

TEST(SessionFsm, NotificationInOpenConfirmReturnsToIdle) {
  SessionFsm fsm(plain());
  fsm.start(0);
  fsm.connected(0);
  fsm.receive(1, FsmMessage{MessageType::kOpen, std::nullopt,
                            FsmOpen{90, 0xc0000202, 65000}});
  ASSERT_EQ(fsm.state(), FsmState::kOpenConfirm);
  fsm.receive(2, FsmMessage{MessageType::kNotification, std::nullopt, std::nullopt});
  EXPECT_EQ(fsm.state(), FsmState::kIdle);
  EXPECT_EQ(fsm.session_drops(), 0);
  EXPECT_EQ(fsm.queued(), 0u) << "stop must clear the half-open queue";
}

TEST(SessionFsm, ConnectRetryTimerFiresWhileTransportIsDown) {
  FsmConfig config = plain();
  config.connect_retry = 5;
  SessionFsm fsm(config);
  fsm.start(0);
  ASSERT_EQ(fsm.state(), FsmState::kConnect);
  for (TimePoint t = 1; t <= 16; ++t) fsm.tick(t);
  EXPECT_EQ(fsm.connect_retries(), 3) << "one firing per 5s while Connect";
  // The transport finally comes up: retries stop counting.
  fsm.connected(17);
  for (TimePoint t = 18; t <= 40; ++t) fsm.tick(t);
  EXPECT_EQ(fsm.connect_retries(), 3);
}

TEST(SessionFsm, NegotiatedTimersAreMinOfBothOffers) {
  SessionFsm fsm(plain());  // we offer 90
  fsm.start(0);
  fsm.connected(0);
  EXPECT_EQ(fsm.negotiated_hold_time(), 90);
  fsm.receive(1, FsmMessage{MessageType::kOpen, std::nullopt,
                            FsmOpen{30, 0xc0000202, 65000}});
  EXPECT_EQ(fsm.negotiated_hold_time(), 30);
  EXPECT_EQ(fsm.negotiated_keepalive_interval(), 10);
  // A zero offer from the peer disables the hold machinery entirely.
  SessionFsm zero(plain());
  zero.start(0);
  zero.connected(0);
  zero.receive(1, FsmMessage{MessageType::kOpen, std::nullopt,
                             FsmOpen{0, 0xc0000202, 65000}});
  EXPECT_EQ(zero.negotiated_hold_time(), 0);
  EXPECT_EQ(zero.negotiated_keepalive_interval(), 0);
}

/// Like Wire, but the shuttles patch real OPEN payloads in, so the
/// endpoints actually negotiate instead of running on configured
/// defaults.
struct NegotiatingWire {
  SessionFsm a;
  SessionFsm b;
  FsmOpen a_open;
  FsmOpen b_open;
  bool a_reads = true;
  TimePoint now = 0;

  NegotiatingWire(FsmConfig config_a, FsmConfig config_b, FsmOpen open_a,
                  FsmOpen open_b)
      : a(config_a), b(config_b), a_open(open_a), b_open(open_b) {}

  void advance(netbase::Duration seconds) {
    for (netbase::Duration i = 0; i < seconds; ++i) {
      ++now;
      a.tick(now);
      b.tick(now);
      for (auto& message : a.drain(now, 16)) {
        if (message.type == MessageType::kOpen && !message.open.has_value())
          message.open = a_open;
        b.receive(now, message);
      }
      if (a_reads) {
        for (auto& message : b.drain(now, 16)) {
          if (message.type == MessageType::kOpen && !message.open.has_value())
            message.open = b_open;
          a.receive(now, message);
        }
      }
    }
  }
};

TEST(SessionFsm, HoldTimerRunsAtTheNegotiatedValueNotTheConfiguredOne) {
  // Regression: A offers 90 but B offers 30 — once B's OPEN is in, A's
  // session must run at hold 30 / keepalive 10. When B goes silent the
  // drop comes ~30s later, three times sooner than A's configured 90.
  FsmConfig config_a{90, 30, 0};
  FsmConfig config_b{30, 10, 0};
  NegotiatingWire wire(config_a, config_b, FsmOpen{90, 0xc0000201, 64999},
                       FsmOpen{30, 0xc0000202, 65000});
  wire.a.start(0);
  wire.b.start(0);
  wire.a.connected(0);
  wire.b.connected(0);
  wire.advance(5);
  ASSERT_EQ(wire.a.state(), FsmState::kEstablished);
  EXPECT_EQ(wire.a.negotiated_hold_time(), 30);

  // Healthy at the negotiated cadence for a while first.
  wire.advance(5 * kMinute);
  ASSERT_EQ(wire.a.state(), FsmState::kEstablished);

  wire.a_reads = false;  // B goes silent from A's perspective
  wire.advance(31);
  EXPECT_EQ(wire.a.state(), FsmState::kIdle)
      << "a 90s configured hold would still be running here";
  EXPECT_EQ(wire.a.last_error(), "hold timer expired");
}

TEST(SessionFsm, CollisionResolutionClosesExactlyOneConnection) {
  // RFC 4271 §6.8 truth table: the connection initiated by the higher
  // BGP Identifier survives; for any (ids, who-initiated) exactly one
  // of the two parallel connections closes.
  for (const bool local_initiated : {true, false}) {
    // The same physical connection seen from both ends (initiator flag
    // flips, ids swap): both speakers must reach the same verdict.
    EXPECT_EQ(SessionFsm::collision_close_local(20, 10, local_initiated),
              SessionFsm::collision_close_local(10, 20, !local_initiated))
        << "the two speakers must agree on which connection dies";
  }
  EXPECT_FALSE(SessionFsm::collision_close_local(20, 10, true));
  EXPECT_TRUE(SessionFsm::collision_close_local(10, 20, true));
  EXPECT_TRUE(SessionFsm::collision_close_local(20, 10, false));
  EXPECT_FALSE(SessionFsm::collision_close_local(10, 20, false));
}

}  // namespace
}  // namespace zombiescope::bgp

#include "obs/build_info.hpp"

#include <cstdio>

// The cmake obs target defines ZS_GIT_SHA / ZS_BUILD_TYPE /
// ZS_SANITIZE_FLAGS for this translation unit; default to "unknown" /
// empty so a bare compile still links.
#ifndef ZS_GIT_SHA
#define ZS_GIT_SHA "unknown"
#endif
#ifndef ZS_BUILD_TYPE
#define ZS_BUILD_TYPE "unknown"
#endif
#ifndef ZS_SANITIZE_FLAGS
#define ZS_SANITIZE_FLAGS ""
#endif

namespace zombiescope::obs {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
         "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string arch_string() {
#if defined(__x86_64__)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "unknown";
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = ZS_GIT_SHA;
    b.compiler = compiler_string();
    b.build_type = ZS_BUILD_TYPE;
    b.sanitizer = ZS_SANITIZE_FLAGS;
    b.arch = arch_string();
    return b;
  }();
  return info;
}

std::string build_info_json() {
  const BuildInfo& b = build_info();
  return "{\"git_sha\": \"" + json_escape(b.git_sha) + "\", \"compiler\": \"" +
         json_escape(b.compiler) + "\", \"build_type\": \"" +
         json_escape(b.build_type) + "\", \"sanitizer\": \"" +
         json_escape(b.sanitizer) + "\", \"arch\": \"" + json_escape(b.arch) +
         "\"}";
}

std::string identity_line(std::string_view tool) {
  const BuildInfo& b = build_info();
  std::string line;
  line += tool;
  line += " (zombiescope) ";
  line += b.git_sha;
  line += ' ';
  line += b.compiler;
  line += ' ';
  line += b.build_type;
  line += ' ';
  line += b.arch;
  if (!b.sanitizer.empty()) {
    line += " sanitizer=";
    line += b.sanitizer;
  }
  return line;
}

bool builds_comparable(const BuildInfo& a, const BuildInfo& b) {
  return a.compiler == b.compiler && a.build_type == b.build_type &&
         a.sanitizer == b.sanitizer && a.arch == b.arch;
}

}  // namespace zombiescope::obs

file(REMOVE_RECURSE
  "CMakeFiles/zs_netbase.dir/bytes.cpp.o"
  "CMakeFiles/zs_netbase.dir/bytes.cpp.o.d"
  "CMakeFiles/zs_netbase.dir/ip.cpp.o"
  "CMakeFiles/zs_netbase.dir/ip.cpp.o.d"
  "CMakeFiles/zs_netbase.dir/time.cpp.o"
  "CMakeFiles/zs_netbase.dir/time.cpp.o.d"
  "libzs_netbase.a"
  "libzs_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_rost.
# This may be replaced when dependencies are built.

// Tests for zslat (obs/lathist.hpp): the bucket geometry's bounded
// relative error, quantile math on snapshots, exact bucket-wise merge
// and diff, lock-free concurrent recording, and the leaked-singleton
// registry with its JSON/folded renderings. Suites are Obs-prefixed so
// scripts/run_tier1.sh reruns them under TSan (record() promises
// lock-free cross-thread use) and ASan+UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/lathist.hpp"

namespace zombiescope::obs {
namespace {

static_assert(kLatHistCompiledIn,
              "the plain build must compile the latency histograms in");

// Deterministic 64-bit values spanning the whole range (splitmix64).
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------------

TEST(ObsLatHist, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < kLatSubBuckets; ++v) {
    EXPECT_EQ(lat_bucket_index(v), v);
    EXPECT_EQ(lat_bucket_lower(v), v);
    EXPECT_EQ(lat_bucket_upper(v), v);
  }
}

TEST(ObsLatHist, EdgesAreConsistentWithIndexing) {
  // Every bucket's own edges must map back to that bucket, edges must
  // tile the value space with no gap or overlap, and the first
  // log-spaced bucket must start right after the exact range.
  for (std::size_t i = 0; i < 20 * kLatSubBuckets; ++i) {
    EXPECT_EQ(lat_bucket_index(lat_bucket_lower(i)), i) << "bucket " << i;
    EXPECT_EQ(lat_bucket_index(lat_bucket_upper(i)), i) << "bucket " << i;
    if (i > 0) EXPECT_EQ(lat_bucket_lower(i), lat_bucket_upper(i - 1) + 1);
  }
  EXPECT_EQ(lat_bucket_lower(kLatSubBuckets), kLatSubBuckets);
  // The largest representable latency maps inside the table.
  EXPECT_LT(lat_bucket_index(~0ull), kLatBucketCount);
}

TEST(ObsLatHist, RelativeErrorBoundedBySubBucketWidth) {
  // Property: any value's bucket spans at most v / kLatSubBuckets, so
  // reporting any point inside the bucket errs by < 1/32 = 3.125%.
  std::uint64_t state = 42;
  for (int i = 0; i < 200000; ++i) {
    // Cover every magnitude: shift a full-entropy value by 0..63 bits.
    const std::uint64_t v = mix(state) >> (i % 64);
    if (v < kLatSubBuckets) continue;  // exact down there
    const std::size_t idx = lat_bucket_index(v);
    const std::uint64_t lo = lat_bucket_lower(idx);
    const std::uint64_t hi = lat_bucket_upper(idx);
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    const double width = static_cast<double>(hi - lo + 1);
    EXPECT_LE(width / static_cast<double>(v),
              1.0 / static_cast<double>(kLatSubBuckets) + 1e-12)
        << "value " << v << " bucket [" << lo << "," << hi << "]";
  }
}

// ---------------------------------------------------------------------------
// Recording and quantiles
// ---------------------------------------------------------------------------

TEST(ObsLatHist, QuantilesTrackAKnownDistribution) {
  LatHist hist;
  for (std::uint64_t v = 1; v <= 10000; ++v) hist.record(v * 1000);  // 1..10ms
  const LatSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_EQ(snap.min_ns, 1000u);
  EXPECT_EQ(snap.max_ns, 10000000u);
  // True quantiles of the uniform grid, within the 3.125% bucket bound
  // (plus a little slack for the within-bucket interpolation).
  EXPECT_NEAR(snap.quantile_ns(0.50), 5000500.0, 0.04 * 5000500.0);
  EXPECT_NEAR(snap.quantile_ns(0.95), 9500000.0, 0.04 * 9500000.0);
  EXPECT_NEAR(snap.quantile_ns(0.99), 9900000.0, 0.04 * 9900000.0);
  // Quantiles are monotone and clamped to the observed extremes.
  double last = 0.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double x = snap.quantile_ns(q);
    EXPECT_GE(x, last);
    EXPECT_GE(x, static_cast<double>(snap.min_ns));
    EXPECT_LE(x, static_cast<double>(snap.max_ns));
    last = x;
  }
}

TEST(ObsLatHist, SingleValueIsReportedExactly) {
  LatHist hist;
  hist.record(123456);
  const LatSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min_ns, 123456u);
  EXPECT_EQ(snap.max_ns, 123456u);
  // Min/max clamping makes the single observation exact at any q.
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.5), 123456.0);
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.99), 123456.0);
  EXPECT_DOUBLE_EQ(snap.mean_ns(), 123456.0);
}

TEST(ObsLatHist, EmptySnapshotIsInert) {
  LatHist hist;
  const LatSnapshot snap = hist.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.quantile_ns(0.99), 0.0);
  EXPECT_EQ(snap.mean_ns(), 0.0);
}

// ---------------------------------------------------------------------------
// Merge and diff
// ---------------------------------------------------------------------------

TEST(ObsLatHist, MergeEqualsRecordingIntoOne) {
  // Shard-per-histogram aggregation must be exact: merging the shards'
  // snapshots gives the same state as one histogram fed everything.
  LatHist combined;
  LatHist shard_a;
  LatHist shard_b;
  std::uint64_t state = 7;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = mix(state) >> (i % 40);
    combined.record(v);
    (i % 2 == 0 ? shard_a : shard_b).record(v);
  }
  LatSnapshot merged = shard_a.snapshot();
  merged.merge(shard_b.snapshot());
  const LatSnapshot direct = combined.snapshot();
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_EQ(merged.sum_ns, direct.sum_ns);
  EXPECT_EQ(merged.min_ns, direct.min_ns);
  EXPECT_EQ(merged.max_ns, direct.max_ns);
  EXPECT_EQ(merged.counts, direct.counts);
  for (double q : {0.5, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile_ns(q), direct.quantile_ns(q));
}

TEST(ObsLatHist, MergeIntoEmptyAdoptsOther) {
  LatHist hist;
  hist.record(500);
  hist.record(900);
  LatSnapshot empty;
  empty.merge(hist.snapshot());
  EXPECT_EQ(empty.count, 2u);
  EXPECT_EQ(empty.min_ns, 500u);
  EXPECT_EQ(empty.max_ns, 900u);
}

TEST(ObsLatHist, DiffSinceIsolatesTheInterval) {
  LatHist hist;
  for (int i = 0; i < 100; ++i) hist.record(1000);
  const LatSnapshot before = hist.snapshot();
  for (int i = 0; i < 50; ++i) hist.record(8000);
  const LatSnapshot interval = hist.snapshot().diff_since(before);
  EXPECT_EQ(interval.count, 50u);
  EXPECT_EQ(interval.sum_ns, 50u * 8000u);
  // The interval's extremes come from its own buckets: the earlier
  // 1000ns observations must not leak into it (bucketed bounds, so
  // only assert the bucket's 3.125% window around 8000).
  EXPECT_GT(interval.min_ns, 7000u);
  EXPECT_NEAR(interval.quantile_ns(0.5), 8000.0, 0.04 * 8000.0);
  // Diffing identical snapshots yields an empty interval.
  const LatSnapshot now = hist.snapshot();
  EXPECT_TRUE(now.diff_since(now).empty());
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST(ObsLatHist, ConcurrentRecordersLoseNothing) {
  // 4 recorders hammer one histogram; counts, sums, and the bucket
  // total must all agree afterwards. TSan (run_tier1.sh) checks the
  // memory model; this checks the arithmetic.
  LatHist hist;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i)
        hist.record(i + static_cast<std::uint64_t>(t));
    });
  }
  for (auto& thread : threads) thread.join();
  const LatSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.min_ns, 1u);
  EXPECT_EQ(snap.max_ns, kPerThread + kThreads - 1);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsLatHist, RegistryReturnsTheSameInstanceForever) {
  LatHist& a = LatRegistry::global().get("lathist_test.same");
  LatHist& b = LatRegistry::global().get("lathist_test.same");
  EXPECT_EQ(&a, &b);
  LatHist& c = LatRegistry::global().get("lathist_test.other");
  EXPECT_NE(&a, &c);
}

TEST(ObsLatHist, RegistryJsonSkipsEmptyAndRendersRecorded) {
  LatRegistry& reg = LatRegistry::global();
  (void)reg.get("lathist_test.render_empty");  // registered, never recorded
  LatHist& hist = reg.get("lathist_test.render");
  const std::uint64_t before = hist.count();
  hist.record(2500);
  const std::string json = reg.to_json();
  EXPECT_EQ(json.find("lathist_test.render_empty"), std::string::npos);
  EXPECT_NE(json.find("\"lathist_test.render\":{\"count\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\":"), std::string::npos);
  const std::string folded = reg.to_folded();
  EXPECT_NE(folded.find("lathist_test.render;le_"), std::string::npos);
  EXPECT_NE(folded.find("lathist_test.render;count "), std::string::npos);
  EXPECT_EQ(hist.count(), before + 1);
}

TEST(ObsLatHist, SnapshotAllIsSortedByName) {
  LatRegistry& reg = LatRegistry::global();
  (void)reg.get("lathist_test.zz");
  (void)reg.get("lathist_test.aa");
  const auto all = reg.snapshot_all();
  ASSERT_GE(all.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      all.begin(), all.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
}

}  // namespace
}  // namespace zombiescope::obs

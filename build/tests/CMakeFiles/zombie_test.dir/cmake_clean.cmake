file(REMOVE_RECURSE
  "CMakeFiles/zombie_test.dir/zombie_test.cpp.o"
  "CMakeFiles/zombie_test.dir/zombie_test.cpp.o.d"
  "zombie_test"
  "zombie_test.pdb"
  "zombie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zombie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "obs/causal.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace zombiescope::obs {

namespace {

struct KindName {
  TraceKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {TraceKind::kAnnouncement, "announcement"},
    {TraceKind::kWithdrawal, "withdrawal"},
};

struct DecisionName {
  HopDecision decision;
  std::string_view name;
};

constexpr DecisionName kDecisionNames[] = {
    {HopDecision::kOriginated, "originated"},
    {HopDecision::kForwarded, "forwarded"},
    {HopDecision::kSuppressedByFault, "suppressed_by_fault"},
    {HopDecision::kStalled, "stalled"},
    {HopDecision::kPolicyFiltered, "policy_filtered"},
    {HopDecision::kImplicitlyWithdrawn, "implicitly_withdrawn"},
};

}  // namespace

std::string_view to_string(TraceKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

std::string_view to_string(HopDecision decision) {
  for (const auto& entry : kDecisionNames) {
    if (entry.decision == decision) return entry.name;
  }
  return "unknown";
}

std::optional<HopDecision> parse_hop_decision(std::string_view name) {
  for (const auto& entry : kDecisionNames) {
    if (entry.name == name) return entry.decision;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Journal codec.

JournalEvent to_journal_event(const HopRecord& record) {
  JournalEvent ev;
  ev.type = JournalEventType::kPropagationHop;
  ev.time = record.time;
  ev.has_prefix = true;
  ev.prefix = record.prefix;
  ev.a = static_cast<std::int64_t>(record.trace_id);
  ev.b = (static_cast<std::int64_t>(record.from_asn) << 32) |
         static_cast<std::int64_t>(record.to_asn);
  ev.c = (static_cast<std::int64_t>(record.hop) << 16) |
         (static_cast<std::int64_t>(record.kind) << 8) |
         static_cast<std::int64_t>(record.decision);
  return ev;
}

std::optional<HopRecord> hop_from_event(const JournalEvent& event) {
  if (event.type != JournalEventType::kPropagationHop || !event.has_prefix)
    return std::nullopt;
  const auto kind = static_cast<std::uint8_t>((event.c >> 8) & 0xff);
  const auto decision = static_cast<std::uint8_t>(event.c & 0xff);
  if (kind > static_cast<std::uint8_t>(TraceKind::kWithdrawal)) return std::nullopt;
  if (decision > static_cast<std::uint8_t>(HopDecision::kImplicitlyWithdrawn))
    return std::nullopt;
  HopRecord record;
  record.trace_id = static_cast<std::uint64_t>(event.a);
  record.prefix = event.prefix;
  record.from_asn = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(event.b) >> 32) & 0xffffffffu);
  record.to_asn =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(event.b) & 0xffffffffu);
  record.time = event.time;
  record.hop = static_cast<std::uint16_t>((event.c >> 16) & 0xffff);
  record.kind = static_cast<TraceKind>(kind);
  record.decision = static_cast<HopDecision>(decision);
  return record;
}

// ---------------------------------------------------------------------------
// Tree rendering.

namespace {

void render_subtree(std::string& out,
                    const std::multimap<std::uint32_t, const HopRecord*>& children,
                    std::uint32_t asn, int depth, std::vector<std::uint32_t>& visited) {
  if (std::find(visited.begin(), visited.end(), asn) != visited.end()) return;
  visited.push_back(asn);
  auto [lo, hi] = children.equal_range(asn);
  for (auto it = lo; it != hi; ++it) {
    const HopRecord& hop = *it->second;
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += "AS" + std::to_string(hop.to_asn);
    out += ' ';
    out += to_string(hop.kind);
    out += ' ';
    out += to_string(hop.decision);
    out += " t=" + std::to_string(hop.time);
    out += " hop=" + std::to_string(hop.hop);
    out += '\n';
    if (hop.decision == HopDecision::kOriginated ||
        hop.decision == HopDecision::kForwarded ||
        hop.decision == HopDecision::kImplicitlyWithdrawn)
      render_subtree(out, children, hop.to_asn, depth + 1, visited);
  }
}

}  // namespace

std::string render_propagation_tree(const netbase::Prefix& prefix,
                                    const std::vector<HopRecord>& records,
                                    std::size_t max_traces) {
  // Bundle this prefix's records per trace, remembering each trace's
  // latest timestamp so the most recent waves render first.
  std::map<std::uint64_t, std::vector<const HopRecord*>> traces;
  std::map<std::uint64_t, netbase::TimePoint> latest;
  for (const HopRecord& record : records) {
    if (!(record.prefix == prefix)) continue;
    traces[record.trace_id].push_back(&record);
    latest[record.trace_id] = std::max(latest[record.trace_id], record.time);
  }

  std::vector<std::uint64_t> order;
  order.reserve(traces.size());
  for (const auto& [id, hops] : traces) order.push_back(id);
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    if (latest[a] != latest[b]) return latest[a] > latest[b];
    return a > b;
  });
  if (order.size() > max_traces) order.resize(max_traces);

  std::string out = "prefix " + prefix.to_string() + ": " +
                    std::to_string(traces.size()) + " trace(s)\n";
  for (std::uint64_t id : order) {
    auto hops = traces[id];
    std::sort(hops.begin(), hops.end(), [](const HopRecord* a, const HopRecord* b) {
      if (a->hop != b->hop) return a->hop < b->hop;
      if (a->time != b->time) return a->time < b->time;
      return a->to_asn < b->to_asn;
    });
    std::multimap<std::uint32_t, const HopRecord*> children;
    const HopRecord* root = nullptr;
    for (const HopRecord* hop : hops) {
      if (hop->decision == HopDecision::kOriginated && root == nullptr) root = hop;
      children.emplace(hop->from_asn, hop);
    }
    out += "trace " + std::to_string(id);
    if (root != nullptr) {
      out += " (";
      out += to_string(root->kind);
      out += " rooted at AS" + std::to_string(root->to_asn) + ")";
    }
    out += '\n';
    std::vector<std::uint32_t> visited;
    // Roots report from_asn 0; orphaned subtrees (their root record
    // lost to ring overflow) are rendered from their earliest sender.
    if (children.contains(0)) {
      render_subtree(out, children, 0, 1, visited);
    } else if (!hops.empty()) {
      render_subtree(out, children, hops.front()->from_asn, 1, visited);
    }
  }
  return out;
}

#if ZS_CAUSAL_ENABLED

// ---------------------------------------------------------------------------
// The tracer: Vyukov MPSC ring + per-prefix store.

namespace {

// SplitMix64: the sampling decision is a stateless hash of the trace
// id, so concurrent begin_trace calls need no shared RNG state and a
// given (seed, id) always draws the same verdict.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

struct CausalTracer::Impl {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    HopRecord record;
  };

  std::atomic<bool> enabled{true};
  std::atomic<double> announce_rate{kDefaultAnnounceSampleRate};
  std::atomic<std::uint64_t> sample_seed{0x5eedba5e5eedba5eull};
  std::atomic<std::uint64_t> next_id{0};
  std::atomic<std::uint64_t> traces_started{0};
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::uint64_t> dropped{0};

  std::unique_ptr<Slot[]> slots{new Slot[kRingCapacity]};
  alignas(64) std::atomic<std::uint64_t> enqueue_pos{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos{0};

  std::mutex consumer_mutex;
  std::unordered_map<netbase::Prefix, std::deque<HopRecord>> store;

  Counter m_recorded;
  Counter m_dropped;
  Counter m_traces;

  Impl() {
    for (std::size_t i = 0; i < kRingCapacity; ++i)
      slots[i].seq.store(i, std::memory_order_relaxed);
    m_recorded = Registry::global().counter("zs_causal_hops_recorded_total");
    m_dropped = Registry::global().counter("zs_causal_hops_dropped_total");
    m_traces = Registry::global().counter("zs_causal_traces_started_total");
  }

  bool try_enqueue(const HopRecord& record) {
    std::uint64_t pos = enqueue_pos.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots[pos & (kRingCapacity - 1)];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          slot.record = record;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos.load(std::memory_order_relaxed);
      }
    }
  }

  // Single consumer; callers hold consumer_mutex.
  bool try_dequeue(HopRecord& out) {
    const std::uint64_t pos = dequeue_pos.load(std::memory_order_relaxed);
    Slot& slot = slots[pos & (kRingCapacity - 1)];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0)
      return false;  // empty
    out = slot.record;
    slot.seq.store(pos + kRingCapacity, std::memory_order_release);
    dequeue_pos.store(pos + 1, std::memory_order_relaxed);
    return true;
  }
};

CausalTracer::CausalTracer() : impl_(new Impl) {}

CausalTracer& CausalTracer::global() {
  static CausalTracer tracer;
  return tracer;
}

bool CausalTracer::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void CausalTracer::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

double CausalTracer::announce_sample_rate() const {
  return impl_->announce_rate.load(std::memory_order_relaxed);
}

void CausalTracer::set_announce_sample_rate(double rate) {
  impl_->announce_rate.store(std::clamp(rate, 0.0, 1.0),
                             std::memory_order_relaxed);
}

void CausalTracer::set_sample_seed(std::uint64_t seed) {
  impl_->sample_seed.store(seed, std::memory_order_relaxed);
}

TraceContext CausalTracer::begin_trace(TraceKind kind) {
  if (!enabled()) return {};
  const std::uint64_t id =
      impl_->next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  if (kind == TraceKind::kAnnouncement) {
    const double rate = announce_sample_rate();
    if (!(rate > 0.0)) return {};
    if (rate < 1.0) {
      const std::uint64_t h =
          splitmix64(id ^ impl_->sample_seed.load(std::memory_order_relaxed));
      // Top 53 bits -> uniform double in [0, 1).
      if (static_cast<double>(h >> 11) * 0x1.0p-53 >= rate) return {};
    }
  }
  impl_->traces_started.fetch_add(1, std::memory_order_relaxed);
  impl_->m_traces.inc();
  return {id, 0};
}

void CausalTracer::record(const HopRecord& record) {
  if (record.trace_id == 0 || !enabled()) return;
  if (impl_->try_enqueue(record)) {
    impl_->recorded.fetch_add(1, std::memory_order_relaxed);
    impl_->m_recorded.inc();
  } else {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    impl_->m_dropped.inc();
  }
  Journal& journal = Journal::global();
  if (journal.enabled(kCatPropagation))
    journal.emit<kCatPropagation>(to_journal_event(record));
}

std::size_t CausalTracer::drain() {
  std::lock_guard<std::mutex> lock(impl_->consumer_mutex);
  std::size_t moved = 0;
  HopRecord record;
  while (impl_->try_dequeue(record)) {
    ++moved;
    if (!impl_->store.contains(record.prefix) &&
        impl_->store.size() >= kMaxPrefixes)
      continue;  // bounded: ancient prefixes win over new ones
    auto& bucket = impl_->store[record.prefix];
    bucket.push_back(record);
    if (bucket.size() > kMaxRecordsPerPrefix) bucket.pop_front();
  }
  return moved;
}

std::vector<HopRecord> CausalTracer::records_for(const netbase::Prefix& prefix) {
  drain();
  std::lock_guard<std::mutex> lock(impl_->consumer_mutex);
  auto it = impl_->store.find(prefix);
  if (it == impl_->store.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<netbase::Prefix> CausalTracer::traced_prefixes() {
  drain();
  std::lock_guard<std::mutex> lock(impl_->consumer_mutex);
  std::vector<netbase::Prefix> out;
  out.reserve(impl_->store.size());
  for (const auto& [prefix, bucket] : impl_->store) {
    (void)bucket;
    out.push_back(prefix);
  }
  return out;
}

std::uint64_t CausalTracer::traces_started() const {
  return impl_->traces_started.load(std::memory_order_relaxed);
}

std::uint64_t CausalTracer::recorded() const {
  return impl_->recorded.load(std::memory_order_relaxed);
}

std::uint64_t CausalTracer::dropped() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

void CausalTracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->consumer_mutex);
  HopRecord discard;
  while (impl_->try_dequeue(discard)) {
  }
  impl_->store.clear();
  impl_->next_id.store(0, std::memory_order_relaxed);
  impl_->traces_started.store(0, std::memory_order_relaxed);
  impl_->recorded.store(0, std::memory_order_relaxed);
  impl_->dropped.store(0, std::memory_order_relaxed);
}

TraceContext causal_begin_trace(TraceKind kind) {
  return CausalTracer::global().begin_trace(kind);
}

void causal_record(const HopRecord& record) {
  CausalTracer::global().record(record);
}

bool causal_enabled() { return CausalTracer::global().enabled(); }

void causal_set_enabled(bool on) { CausalTracer::global().set_enabled(on); }

void causal_set_announce_sample_rate(double rate) {
  CausalTracer::global().set_announce_sample_rate(rate);
}

#endif  // ZS_CAUSAL_ENABLED

}  // namespace zombiescope::obs

#include "rpki/rov.hpp"

#include <algorithm>

namespace zombiescope::rpki {

std::string to_string(RovState state) {
  switch (state) {
    case RovState::kNotFound:
      return "NotFound";
    case RovState::kValid:
      return "Valid";
    case RovState::kInvalid:
      return "Invalid";
  }
  return "?";
}

std::string to_string(RovPolicy policy) {
  switch (policy) {
    case RovPolicy::kNone:
      return "none";
    case RovPolicy::kImportOnly:
      return "import-only";
    case RovPolicy::kCompliant:
      return "compliant";
  }
  return "?";
}

void RoaTable::add(const Roa& roa, netbase::TimePoint from) {
  entries_.push_back({roa, from, std::nullopt});
}

int RoaTable::remove(const Roa& roa, netbase::TimePoint at,
                     netbase::Duration visibility_delay) {
  int ended = 0;
  for (auto& entry : entries_) {
    if (entry.roa == roa && !entry.valid_until.has_value() && entry.valid_from <= at) {
      entry.valid_until = at + visibility_delay;
      ++ended;
    }
  }
  return ended;
}

RovState RoaTable::validate(const netbase::Prefix& prefix, bgp::Asn origin,
                            netbase::TimePoint at) const {
  bool covered = false;
  for (const auto& entry : entries_) {
    if (entry.valid_from > at) continue;
    if (entry.valid_until.has_value() && *entry.valid_until <= at) continue;
    if (!entry.roa.prefix.covers(prefix)) continue;
    covered = true;
    if (entry.roa.asn == origin && prefix.length() <= entry.roa.max_length)
      return RovState::kValid;
  }
  return covered ? RovState::kInvalid : RovState::kNotFound;
}

std::vector<netbase::TimePoint> RoaTable::change_times() const {
  std::vector<netbase::TimePoint> times;
  for (const auto& entry : entries_) {
    times.push_back(entry.valid_from);
    if (entry.valid_until.has_value()) times.push_back(*entry.valid_until);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace zombiescope::rpki

#include "mrt/codec.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <stdexcept>

#include "bgp/attributes.hpp"
#include "obs/metrics.hpp"

namespace zombiescope::mrt {

namespace {

// Codec telemetry: byte/record throughput per direction, per-type
// record counts, and a size histogram — enough to audit how much MRT
// each pipeline stage emits. Bound once; increments are relaxed
// atomics.
struct CodecMetrics {
  obs::Counter bytes_encoded = obs::Registry::global().counter("zs_mrt_bytes_encoded_total");
  obs::Counter bytes_decoded = obs::Registry::global().counter("zs_mrt_bytes_decoded_total");
  obs::Counter records_encoded =
      obs::Registry::global().counter("zs_mrt_records_encoded_total");
  obs::Counter records_decoded =
      obs::Registry::global().counter("zs_mrt_records_decoded_total");
  // Per-record-type counts, indexed by the MrtRecord variant order.
  std::array<obs::Counter, 4> encoded_by_type{
      obs::Registry::global().counter("zs_mrt_encoded_bgp4mp_message_total"),
      obs::Registry::global().counter("zs_mrt_encoded_bgp4mp_state_change_total"),
      obs::Registry::global().counter("zs_mrt_encoded_peer_index_table_total"),
      obs::Registry::global().counter("zs_mrt_encoded_rib_entry_total")};
  std::array<obs::Counter, 4> decoded_by_type{
      obs::Registry::global().counter("zs_mrt_decoded_bgp4mp_message_total"),
      obs::Registry::global().counter("zs_mrt_decoded_bgp4mp_state_change_total"),
      obs::Registry::global().counter("zs_mrt_decoded_peer_index_table_total"),
      obs::Registry::global().counter("zs_mrt_decoded_rib_entry_total")};
  obs::Histogram record_bytes =
      obs::Registry::global().histogram("zs_mrt_record_bytes", obs::byte_buckets());
};

CodecMetrics& codec_metrics() {
  static CodecMetrics metrics;
  return metrics;
}

using netbase::AddressFamily;
using netbase::ByteReader;
using netbase::ByteWriter;
using netbase::DecodeError;
using netbase::IpAddress;
using netbase::Prefix;

constexpr std::uint16_t kAfiIpv4 = 1;
constexpr std::uint16_t kAfiIpv6 = 2;

void write_common_header(ByteWriter& w, netbase::TimePoint timestamp, RecordType type,
                         std::uint16_t subtype, std::uint32_t body_length) {
  w.u32(static_cast<std::uint32_t>(timestamp));
  w.u16(static_cast<std::uint16_t>(type));
  w.u16(subtype);
  w.u32(body_length);
}

void write_address(ByteWriter& w, const IpAddress& address) {
  w.bytes(std::span<const std::uint8_t>(address.bytes().data(),
                                        static_cast<std::size_t>(address.byte_length())));
}

IpAddress read_address(ByteReader& r, AddressFamily family) {
  std::array<std::uint8_t, 16> bytes{};
  const std::size_t n = family == AddressFamily::kIpv4 ? 4 : 16;
  auto raw = r.bytes(n);
  std::copy(raw.begin(), raw.end(), bytes.begin());
  return family == AddressFamily::kIpv4
             ? IpAddress::v4({bytes[0], bytes[1], bytes[2], bytes[3]})
             : IpAddress::v6(bytes);
}

// The BGP4MP_MESSAGE_AS4 / STATE_CHANGE_AS4 shared per-record header.
void write_bgp4mp_header(ByteWriter& w, bgp::Asn peer_asn, bgp::Asn local_asn,
                         const IpAddress& peer, const IpAddress& local) {
  if (peer.family() != local.family())
    throw DecodeError("BGP4MP: peer/local address family mismatch");
  w.u32(peer_asn);
  w.u32(local_asn);
  w.u16(0);  // interface index
  w.u16(peer.is_v4() ? kAfiIpv4 : kAfiIpv6);
  write_address(w, peer);
  write_address(w, local);
}

struct Bgp4mpHeader {
  bgp::Asn peer_asn;
  bgp::Asn local_asn;
  IpAddress peer;
  IpAddress local;
};

Bgp4mpHeader read_bgp4mp_header(ByteReader& r) {
  Bgp4mpHeader h;
  h.peer_asn = r.u32();
  h.local_asn = r.u32();
  r.u16();  // interface index
  const std::uint16_t afi = r.u16();
  if (afi != kAfiIpv4 && afi != kAfiIpv6) throw DecodeError("BGP4MP: bad AFI");
  const AddressFamily family = afi == kAfiIpv4 ? AddressFamily::kIpv4 : AddressFamily::kIpv6;
  h.peer = read_address(r, family);
  h.local = read_address(r, family);
  return h;
}

// TABLE_DUMP_V2 RIB entries serialize attributes without NLRI; the
// MP_REACH_NLRI attribute is abbreviated to just the next hop
// (RFC 6396 §4.3.4).
std::vector<std::uint8_t> encode_rib_attributes(const bgp::PathAttributes& attrs,
                                                AddressFamily family) {
  ByteWriter w;
  w.u8(bgp::kAttrFlagTransitive);
  w.u8(static_cast<std::uint8_t>(bgp::AttrType::kOrigin));
  w.u8(1);
  w.u8(static_cast<std::uint8_t>(attrs.origin));

  bgp::wire::write_attribute(w, bgp::kAttrFlagTransitive, bgp::AttrType::kAsPath,
                             bgp::wire::encode_as_path(attrs.as_path));

  if (family == AddressFamily::kIpv4) {
    const IpAddress nh = attrs.next_hop.value_or(IpAddress::v4(0u));
    if (!nh.is_v4()) throw DecodeError("RIB v4 entry requires IPv4 next hop");
    w.u8(bgp::kAttrFlagTransitive);
    w.u8(static_cast<std::uint8_t>(bgp::AttrType::kNextHop));
    w.u8(4);
    w.bytes(std::span<const std::uint8_t>(nh.bytes().data(), 4));
  } else {
    std::array<std::uint8_t, 16> zero{};
    const IpAddress nh = attrs.next_hop.value_or(IpAddress::v6(zero));
    if (!nh.is_v6()) throw DecodeError("RIB v6 entry requires IPv6 next hop");
    ByteWriter mp;
    mp.u8(16);
    mp.bytes(std::span<const std::uint8_t>(nh.bytes().data(), 16));
    bgp::wire::write_attribute(w, bgp::kAttrFlagOptional, bgp::AttrType::kMpReachNlri,
                               mp.data());
  }
  if (attrs.med) {
    w.u8(bgp::kAttrFlagOptional);
    w.u8(static_cast<std::uint8_t>(bgp::AttrType::kMultiExitDisc));
    w.u8(4);
    w.u32(*attrs.med);
  }
  if (attrs.local_pref) {
    w.u8(bgp::kAttrFlagTransitive);
    w.u8(static_cast<std::uint8_t>(bgp::AttrType::kLocalPref));
    w.u8(4);
    w.u32(*attrs.local_pref);
  }
  if (attrs.aggregator) {
    w.u8(bgp::kAttrFlagOptional | bgp::kAttrFlagTransitive);
    w.u8(static_cast<std::uint8_t>(bgp::AttrType::kAggregator));
    w.u8(8);
    w.u32(attrs.aggregator->asn);
    w.bytes(std::span<const std::uint8_t>(attrs.aggregator->address.bytes().data(), 4));
  }
  if (!attrs.communities.empty()) {
    ByteWriter cw;
    for (const auto& c : attrs.communities) cw.u32(c.value());
    bgp::wire::write_attribute(w, bgp::kAttrFlagOptional | bgp::kAttrFlagTransitive,
                               bgp::AttrType::kCommunities, cw.data());
  }
  return w.take();
}

bgp::PathAttributes decode_rib_attributes(ByteReader r) {
  bgp::PathAttributes attrs;
  while (!r.done()) {
    const std::uint8_t flags = r.u8();
    const std::uint8_t type_code = r.u8();
    const std::size_t len = (flags & bgp::kAttrFlagExtendedLength) ? r.u16() : r.u8();
    ByteReader pr = r.sub(len);
    switch (static_cast<bgp::AttrType>(type_code)) {
      case bgp::AttrType::kOrigin:
        attrs.origin = static_cast<bgp::Origin>(pr.u8());
        break;
      case bgp::AttrType::kAsPath:
        attrs.as_path = bgp::wire::decode_as_path(pr);
        pr = ByteReader({});
        break;
      case bgp::AttrType::kNextHop: {
        auto raw = pr.bytes(4);
        attrs.next_hop = IpAddress::v4({raw[0], raw[1], raw[2], raw[3]});
        break;
      }
      case bgp::AttrType::kMultiExitDisc:
        attrs.med = pr.u32();
        break;
      case bgp::AttrType::kLocalPref:
        attrs.local_pref = pr.u32();
        break;
      case bgp::AttrType::kAggregator: {
        bgp::Aggregator agg;
        agg.asn = pr.u32();
        auto raw = pr.bytes(4);
        agg.address = IpAddress::v4({raw[0], raw[1], raw[2], raw[3]});
        attrs.aggregator = agg;
        break;
      }
      case bgp::AttrType::kCommunities:
        while (!pr.done())
          attrs.communities.push_back(bgp::Community::from_value(pr.u32()));
        break;
      case bgp::AttrType::kMpReachNlri: {
        // Abbreviated form: next-hop length + next hop only.
        const std::uint8_t nh_len = pr.u8();
        if (nh_len != 16 && nh_len != 32)
          throw DecodeError("RIB MP_REACH: bad next-hop length");
        auto raw = pr.bytes(nh_len);
        std::array<std::uint8_t, 16> nh{};
        std::copy(raw.begin(), raw.begin() + 16, nh.begin());
        attrs.next_hop = IpAddress::v6(nh);
        pr = ByteReader({});
        break;
      }
      default: {
        bgp::RawAttribute raw;
        raw.flags = flags;
        raw.type = type_code;
        auto payload = pr.bytes(pr.remaining());
        raw.payload.assign(payload.begin(), payload.end());
        attrs.unknown.push_back(std::move(raw));
        break;
      }
    }
    pr.expect_done("RIB path attribute");
  }
  return attrs;
}

std::vector<std::uint8_t> encode_body(const Bgp4mpMessage& m) {
  ByteWriter w;
  write_bgp4mp_header(w, m.peer_asn, m.local_asn, m.peer_address, m.local_address);
  w.bytes(m.update.encode());
  return w.take();
}

std::vector<std::uint8_t> encode_body(const Bgp4mpStateChange& s) {
  ByteWriter w;
  write_bgp4mp_header(w, s.peer_asn, s.local_asn, s.peer_address, s.local_address);
  w.u16(static_cast<std::uint16_t>(s.old_state));
  w.u16(static_cast<std::uint16_t>(s.new_state));
  return w.take();
}

std::vector<std::uint8_t> encode_body(const PeerIndexTable& t) {
  ByteWriter w;
  w.u32(t.collector_bgp_id);
  w.u16(static_cast<std::uint16_t>(t.view_name.size()));
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(t.view_name.data()), t.view_name.size()));
  w.u16(static_cast<std::uint16_t>(t.peers.size()));
  for (const auto& peer : t.peers) {
    // Peer type bit 0: address family; bit 1: AS size. Always AS4 here.
    const std::uint8_t type = static_cast<std::uint8_t>(0x02 | (peer.address.is_v6() ? 0x01 : 0x00));
    w.u8(type);
    w.u32(peer.bgp_id);
    write_address(w, peer.address);
    w.u32(peer.asn);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_body(const RibEntryRecord& rib) {
  ByteWriter w;
  w.u32(rib.sequence);
  w.u8(static_cast<std::uint8_t>(rib.prefix.length()));
  const int nbytes = (rib.prefix.length() + 7) / 8;
  w.bytes(std::span<const std::uint8_t>(rib.prefix.address().bytes().data(),
                                        static_cast<std::size_t>(nbytes)));
  w.u16(static_cast<std::uint16_t>(rib.entries.size()));
  for (const auto& entry : rib.entries) {
    w.u16(entry.peer_index);
    w.u32(static_cast<std::uint32_t>(entry.originated_time));
    auto attrs = encode_rib_attributes(entry.attributes, rib.prefix.family());
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs);
  }
  return w.take();
}

}  // namespace

void MrtWriter::write(const MrtRecord& record) {
  std::visit(
      [&](const auto& rec) {
        using T = std::decay_t<decltype(rec)>;
        std::vector<std::uint8_t> body = encode_body(rec);
        RecordType type;
        std::uint16_t subtype;
        if constexpr (std::is_same_v<T, Bgp4mpMessage>) {
          type = RecordType::kBgp4mp;
          subtype = static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4);
        } else if constexpr (std::is_same_v<T, Bgp4mpStateChange>) {
          type = RecordType::kBgp4mp;
          subtype = static_cast<std::uint16_t>(Bgp4mpSubtype::kStateChangeAs4);
        } else if constexpr (std::is_same_v<T, PeerIndexTable>) {
          type = RecordType::kTableDumpV2;
          subtype = static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable);
        } else {
          type = RecordType::kTableDumpV2;
          subtype = static_cast<std::uint16_t>(
              rec.prefix.is_v4() ? TableDumpV2Subtype::kRibIpv4Unicast
                                 : TableDumpV2Subtype::kRibIpv6Unicast);
        }
        write_common_header(out_, record_timestamp(record), type, subtype,
                            static_cast<std::uint32_t>(body.size()));
        out_.bytes(body);
        CodecMetrics& metrics = codec_metrics();
        metrics.records_encoded.inc();
        metrics.encoded_by_type[record.index()].inc();
        metrics.bytes_encoded.inc(12 + body.size());
        metrics.record_bytes.observe(static_cast<double>(12 + body.size()));
      },
      record);
}

MrtRecord MrtReader::next() {
  const auto timestamp = static_cast<netbase::TimePoint>(reader_.u32());
  const auto type = static_cast<RecordType>(reader_.u16());
  const std::uint16_t subtype = reader_.u16();
  const std::uint32_t length = reader_.u32();
  ByteReader body = reader_.sub(length);

  MrtRecord record = [&]() -> MrtRecord {
  if (type == RecordType::kBgp4mp) {
    switch (static_cast<Bgp4mpSubtype>(subtype)) {
      case Bgp4mpSubtype::kMessageAs4: {
        Bgp4mpMessage m;
        m.timestamp = timestamp;
        auto h = read_bgp4mp_header(body);
        m.peer_asn = h.peer_asn;
        m.local_asn = h.local_asn;
        m.peer_address = h.peer;
        m.local_address = h.local;
        m.update = bgp::UpdateMessage::decode(body.bytes(body.remaining()));
        return m;
      }
      case Bgp4mpSubtype::kStateChangeAs4: {
        Bgp4mpStateChange s;
        s.timestamp = timestamp;
        auto h = read_bgp4mp_header(body);
        s.peer_asn = h.peer_asn;
        s.local_asn = h.local_asn;
        s.peer_address = h.peer;
        s.local_address = h.local;
        s.old_state = static_cast<bgp::SessionState>(body.u16());
        s.new_state = static_cast<bgp::SessionState>(body.u16());
        body.expect_done("BGP4MP_STATE_CHANGE_AS4");
        return s;
      }
      default:
        throw DecodeError("unsupported BGP4MP subtype " + std::to_string(subtype));
    }
  }
  if (type == RecordType::kTableDumpV2) {
    switch (static_cast<TableDumpV2Subtype>(subtype)) {
      case TableDumpV2Subtype::kPeerIndexTable: {
        PeerIndexTable t;
        t.timestamp = timestamp;
        t.collector_bgp_id = body.u32();
        const std::uint16_t name_len = body.u16();
        auto name = body.bytes(name_len);
        t.view_name.assign(name.begin(), name.end());
        const std::uint16_t count = body.u16();
        t.peers.reserve(count);
        for (int i = 0; i < count; ++i) {
          const std::uint8_t peer_type = body.u8();
          PeerIndexTable::Peer peer;
          peer.bgp_id = body.u32();
          peer.address = read_address(
              body, (peer_type & 0x01) ? AddressFamily::kIpv6 : AddressFamily::kIpv4);
          peer.asn = (peer_type & 0x02) ? body.u32() : body.u16();
          t.peers.push_back(peer);
        }
        body.expect_done("PEER_INDEX_TABLE");
        return t;
      }
      case TableDumpV2Subtype::kRibIpv4Unicast:
      case TableDumpV2Subtype::kRibIpv6Unicast: {
        const AddressFamily family =
            static_cast<TableDumpV2Subtype>(subtype) == TableDumpV2Subtype::kRibIpv4Unicast
                ? AddressFamily::kIpv4
                : AddressFamily::kIpv6;
        RibEntryRecord rib;
        rib.timestamp = timestamp;
        rib.sequence = body.u32();
        const int plen = body.u8();
        const int max_len = family == AddressFamily::kIpv4 ? 32 : 128;
        if (plen > max_len) throw DecodeError("RIB: prefix length out of range");
        auto raw = body.bytes(static_cast<std::size_t>((plen + 7) / 8));
        std::array<std::uint8_t, 16> bytes{};
        std::copy(raw.begin(), raw.end(), bytes.begin());
        IpAddress addr = family == AddressFamily::kIpv4
                             ? IpAddress::v4({bytes[0], bytes[1], bytes[2], bytes[3]})
                             : IpAddress::v6(bytes);
        rib.prefix = Prefix(addr, plen);
        const std::uint16_t count = body.u16();
        rib.entries.reserve(count);
        for (int i = 0; i < count; ++i) {
          RibEntryRecord::Entry entry;
          entry.peer_index = body.u16();
          entry.originated_time = static_cast<netbase::TimePoint>(body.u32());
          const std::uint16_t attr_len = body.u16();
          entry.attributes = decode_rib_attributes(body.sub(attr_len));
          rib.entries.push_back(std::move(entry));
        }
        body.expect_done("RIB entry record");
        return rib;
      }
      default:
        throw DecodeError("unsupported TABLE_DUMP_V2 subtype " + std::to_string(subtype));
    }
  }
  throw DecodeError("unsupported MRT type " + std::to_string(static_cast<int>(type)));
  }();

  CodecMetrics& metrics = codec_metrics();
  metrics.records_decoded.inc();
  metrics.decoded_by_type[record.index()].inc();
  metrics.bytes_decoded.inc(12 + length);
  metrics.record_bytes.observe(12.0 + length);
  return record;
}

std::vector<MrtRecord> decode_all(std::span<const std::uint8_t> data) {
  MrtReader reader(data);
  std::vector<MrtRecord> out;
  while (reader.has_next()) out.push_back(reader.next());
  return out;
}

std::vector<std::uint8_t> encode_all(std::span<const MrtRecord> records) {
  MrtWriter writer;
  for (const auto& record : records) writer.write(record);
  return writer.take();
}

void write_file(const std::string& path, std::span<const MrtRecord> records) {
  const auto bytes = encode_all(records);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("short write to " + path);
}

std::vector<MrtRecord> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode_all(bytes);
}

}  // namespace zombiescope::mrt

// live/queue.hpp — the bounded MPSC ring between feed sources and
// shard workers.
//
// The Vyukov sequence-number ring journal.cpp uses, generalized to
// movable element types (a queued MrtRecord owns prefix vectors): each
// slot carries an atomic sequence that hands the slot back and forth
// between producers and the single consumer, so the fast path is two
// atomic ops per push/pop and never allocates.
//
// Blocking is deliberately layered *around* the lock-free ring, not
// inside it: try_push/try_pop never wait, and the condvar pair is only
// touched when one side has announced (via an atomic flag) that it is
// parked. Live feeds use try_push and count the drop when a shard is
// saturated (backpressure must never slow the wire); replay and bench
// producers use push_blocking, which turns a full queue into
// backpressure instead of data loss — that is why the throughput
// bench reports zero drops by construction.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

namespace zombiescope::live {

template <typename T>
class BoundedMpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit BoundedMpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Non-blocking push; false when the ring is full or closed.
  bool try_push(T&& item) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & (capacity_ - 1)];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = std::move(item);
          slot.seq.store(pos + 1, std::memory_order_release);
          if (consumer_parked_.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> lock(wait_mutex_);
            not_empty_.notify_one();
          }
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Waits for space instead of dropping. Returns false only when the
  /// queue is closed.
  bool push_blocking(T&& item) {
    while (!try_push(std::move(item))) {
      if (closed_.load(std::memory_order_relaxed)) return false;
      std::unique_lock<std::mutex> lock(wait_mutex_);
      producer_parked_.fetch_add(1, std::memory_order_release);
      // Bounded wait: a missed notify costs one timeout, never a hang.
      not_full_.wait_for(lock, std::chrono::milliseconds(10));
      producer_parked_.fetch_sub(1, std::memory_order_release);
    }
    return true;
  }

  /// Single-consumer pop; false when empty.
  bool try_pop(T& out) {
    const std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & (capacity_ - 1)];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) < 0) {
      return false;
    }
    out = std::move(slot.value);
    slot.value = T{};  // release owned resources while the slot idles
    slot.seq.store(pos + capacity_, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer-side wait-for-item with a bounded timeout; false on
  /// timeout (call again) or when closed and drained.
  bool pop_wait(T& out, std::chrono::milliseconds timeout) {
    if (try_pop(out)) return true;
    std::unique_lock<std::mutex> lock(wait_mutex_);
    consumer_parked_.store(true, std::memory_order_release);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    bool got = false;
    while (!(got = try_pop(out))) {
      if (closed_.load(std::memory_order_relaxed)) {
        got = try_pop(out);  // final drain race
        break;
      }
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        got = try_pop(out);
        break;
      }
    }
    consumer_parked_.store(false, std::memory_order_release);
    return got;
  }

  /// Consumer calls this after draining a batch so parked producers
  /// re-check for space.
  void notify_space() {
    if (producer_parked_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      not_full_.notify_all();
    }
  }

  /// Marks the queue closed: pushes start failing, parked threads wake.
  void close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(wait_mutex_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  bool closed() const { return closed_.load(std::memory_order_relaxed); }

  /// Approximate fill (racy by nature; for gauges and stats).
  std::size_t approx_size() const {
    const std::uint64_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? static_cast<std::size_t>(enq - deq) : 0;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::size_t capacity_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};

  std::atomic<bool> closed_{false};
  std::atomic<bool> consumer_parked_{false};
  std::atomic<int> producer_parked_{0};
  std::mutex wait_mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
};

}  // namespace zombiescope::live

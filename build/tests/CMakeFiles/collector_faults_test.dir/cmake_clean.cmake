file(REMOVE_RECURSE
  "CMakeFiles/collector_faults_test.dir/collector_faults_test.cpp.o"
  "CMakeFiles/collector_faults_test.dir/collector_faults_test.cpp.o.d"
  "collector_faults_test"
  "collector_faults_test.pdb"
  "collector_faults_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

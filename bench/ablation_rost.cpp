// ablation_rost — quantifies the countermeasure the paper's related
// work proposes (Anahory et al., "Suppressing BGP Zombies with Route
// Status Transparency", NSDI'25): how the RoST deployment fraction
// shortens zombie lifetimes. The same fault plan (whole-cone
// withdrawal suppression, as in the §5.2 impactful case) runs under
// 0 / 25 / 50 / 100 % enrollment; the stuck route's survival at each
// monitored AS is measured.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "netbase/rng.hpp"
#include "rost/rost.hpp"

using namespace zombiescope;

namespace {

struct RunOutcome {
  int infected_at_3h = 0;   // ASes still holding the zombie 3h after withdrawal
  int infected_at_24h = 0;  // ...and a day after
  int evictions = 0;
};

RunOutcome run_with_deployment(double fraction, std::uint64_t seed) {
  using topology::Relationship;
  // A culprit with a cone of 12 customers, each multihomed.
  topology::Topology topo;
  topo.add_as({210312, 3, "origin"});
  topo.add_as({8298, 2, "upstream"});
  topo.add_as({33891, 2, "culprit"});
  topo.add_as({50000, 2, "alt-transit"});
  topo.add_link(8298, 210312, Relationship::kCustomer);
  topo.add_link(33891, 8298, Relationship::kCustomer);
  topo.add_link(50000, 8298, Relationship::kCustomer);
  std::vector<bgp::Asn> cone;
  for (int i = 0; i < 12; ++i) {
    const bgp::Asn asn = 64600 + static_cast<bgp::Asn>(i);
    cone.push_back(asn);
    topo.add_as({asn, 3, "cust"});
    topo.add_link(33891, asn, Relationship::kCustomer);
    topo.add_link(50000, asn, Relationship::kCustomer);
  }

  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(seed));
  const auto t0 = netbase::utc(2024, 6, 18, 22, 30, 0);
  const auto prefix = netbase::Prefix::parse("2a0d:3dc1:2233::/48");

  simnet::WithdrawalSuppression fault;
  fault.from_asn = 33891;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);

  rost::TransparencyLog log;
  rost::RostAuditor auditor(sim, log, rost::RostConfig{30 * netbase::kMinute});
  netbase::Rng enroll_rng(seed + 1);
  for (bgp::Asn asn : cone)
    if (enroll_rng.uniform() < fraction) auditor.enroll(asn);

  sim.announce(t0, 210312, prefix);
  sim.withdraw(t0 + 15 * netbase::kMinute, 210312, prefix);
  log.publish_announce(prefix, 210312, t0);
  log.publish_withdraw(prefix, 210312, t0 + 15 * netbase::kMinute);
  auditor.schedule(t0, t0 + 25 * netbase::kHour);

  RunOutcome outcome;
  sim.run_until(t0 + 3 * netbase::kHour);
  for (bgp::Asn asn : cone)
    if (sim.router(asn).best(prefix) != nullptr) ++outcome.infected_at_3h;
  sim.run_until(t0 + 24 * netbase::kHour);
  for (bgp::Asn asn : cone)
    if (sim.router(asn).best(prefix) != nullptr) ++outcome.infected_at_24h;
  outcome.evictions = auditor.evictions();
  return outcome;
}

void print_ablation() {
  bench::print_header("Ablation — RoST deployment fraction vs zombie survival",
                      "related work [1] (NSDI'25): the zombie countermeasure, quantified");
  std::vector<std::vector<std::string>> rows;
  for (double fraction : {0.0, 0.25, 0.5, 1.0}) {
    const auto outcome = run_with_deployment(fraction, 17);
    rows.push_back({analysis::pct(fraction, 0), std::to_string(outcome.infected_at_3h),
                    std::to_string(outcome.infected_at_24h),
                    std::to_string(outcome.evictions)});
  }
  std::fputs(analysis::render_table({"RoST deployment", "infected ASes @3h",
                                     "infected @24h", "evictions"},
                                    rows)
                 .c_str(),
             stdout);
  std::printf("A whole-cone suppression (the §5.2 impactful case, 12 customer ASes)\n"
              "under increasing RoST enrollment: enrolled ASes clear the zombie at\n"
              "their next audit; at 100%% deployment the outbreak is fully suppressed\n"
              "within one audit interval.\n");
}

void BM_RostScenario(benchmark::State& state) {
  for (auto _ : state) {
    auto outcome = run_with_deployment(1.0, 17);
    benchmark::DoNotOptimize(outcome.evictions);
  }
}
BENCHMARK(BM_RostScenario)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

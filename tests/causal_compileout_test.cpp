// Proves ZS_CAUSAL_ENABLED=0 really compiles the causal tracer out:
// this binary rebuilds obs/causal.cpp with the macro forced to 0 (see
// tests/CMakeLists.txt), so the CausalTracer class and its ring do not
// exist here — only the inline no-op hooks, the journal codec, and the
// tree renderer (which zsroot needs even in stripped builds).

#include <gtest/gtest.h>

#include "obs/causal.hpp"

namespace zombiescope::obs {
namespace {

static_assert(!kCausalCompiledIn,
              "this target must compile with ZS_CAUSAL_ENABLED=0");
static_assert(ZS_CAUSAL_ENABLED == 0, "compile definition not applied");

TEST(ObsCausalCompileOut, HooksAreInertNoOps) {
  causal_set_enabled(true);  // must be ignorable
  causal_set_announce_sample_rate(1.0);
  EXPECT_FALSE(causal_enabled());

  const TraceContext trace = causal_begin_trace(TraceKind::kWithdrawal);
  EXPECT_FALSE(trace.sampled());
  EXPECT_EQ(trace.trace_id, 0u);

  HopRecord record;
  record.trace_id = 1;
  record.prefix = netbase::Prefix::parse("203.0.113.0/24");
  causal_record(record);  // nowhere to go; must not crash or allocate state
}

TEST(ObsCausalCompileOut, ContextArithmeticStillWorks) {
  // TraceContext stays a plain value type: simnet keeps stamping it on
  // deliveries even in stripped builds, it just never samples.
  TraceContext ctx{9, 2};
  EXPECT_TRUE(ctx.sampled());
  const TraceContext child = ctx.child();
  EXPECT_EQ(child.trace_id, 9u);
  EXPECT_EQ(child.hop, 3u);
}

TEST(ObsCausalCompileOut, CodecAndRendererSurvive) {
  // zsroot must read journals written by enabled builds regardless of
  // how this binary was compiled.
  HopRecord record;
  record.trace_id = 77;
  record.prefix = netbase::Prefix::parse("203.0.113.0/24");
  record.from_asn = 65000;
  record.to_asn = 65001;
  record.time = 22'600;
  record.hop = 1;
  record.kind = TraceKind::kWithdrawal;
  record.decision = HopDecision::kSuppressedByFault;

  const auto back = hop_from_event(to_journal_event(record));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, record);

  HopRecord root = record;
  root.from_asn = 0;
  root.to_asn = 65000;  // the origin; `record` then hangs off it
  root.hop = 0;
  root.decision = HopDecision::kOriginated;
  const std::string tree =
      render_propagation_tree(record.prefix, {root, record});
  EXPECT_NE(tree.find("trace 77"), std::string::npos);
  EXPECT_NE(tree.find("suppressed_by_fault"), std::string::npos);
}

}  // namespace
}  // namespace zombiescope::obs

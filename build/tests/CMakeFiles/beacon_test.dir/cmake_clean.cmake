file(REMOVE_RECURSE
  "CMakeFiles/beacon_test.dir/beacon_test.cpp.o"
  "CMakeFiles/beacon_test.dir/beacon_test.cpp.o.d"
  "beacon_test"
  "beacon_test.pdb"
  "beacon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beacon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// ablation_lookingglass_lag — ablates the looking-glass service delay
// to quantify the paper's §3.1 argument against black-box real-time
// services: "if the service state is updated with a delay of a few
// minutes, then checking the state of a fully withdrawn prefix before
// the service is updated would lead to false positives." At lag 0 the
// emulated looking glass agrees with the raw methodology; the
// disagreement grows with the (unknown) service delay.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/lookingglass.hpp"

using namespace zombiescope;

namespace {

scenarios::ScenarioOutput g_out;
zombie::IntervalDetectionResult g_raw;

void print_ablation() {
  bench::print_header("Ablation — looking-glass service lag vs methodology disagreement",
                      "IMC'25 paper §3.1 (the case for raw-data-only detection)");
  g_out = bench::load_ris_period(0);
  zombie::IntervalZombieDetector raw({});
  g_raw = raw.detect(g_out.updates, g_out.events);

  std::vector<std::vector<std::string>> rows;
  for (int lag_minutes : {0, 2, 4, 8, 16, 30}) {
    zombie::LookingGlassConfig config;
    config.lag = lag_minutes * netbase::kMinute;
    config.stale_snapshot_probability = 0.0;  // isolate the lag effect
    zombie::LookingGlassDetector lg(config);
    const auto lg_result = lg.detect(g_out.updates, g_out.events);

    const auto lg_misses = zombie::count_missing(
        g_raw.routes, g_raw.outbreaks_with_duplicates, lg_result.routes, lg_result.outbreaks);
    const auto lg_extras = zombie::count_missing(
        lg_result.routes, lg_result.outbreaks, g_raw.routes, g_raw.outbreaks_with_duplicates);
    rows.push_back({std::to_string(lag_minutes) + "m",
                    std::to_string(lg_result.outbreaks.size()),
                    std::to_string(lg_misses.routes_v4 + lg_misses.routes_v6),
                    std::to_string(lg_extras.routes_v4 + lg_extras.routes_v6)});
  }
  std::fputs(analysis::render_table({"Service lag", "LG outbreaks", "real zombies missed",
                                     "false zombies added"},
                                    rows)
                 .c_str(),
             stdout);
  std::printf("Raw methodology baseline: %zu outbreaks. With zero lag the looking\n"
              "glass agrees exactly; every minute of (unknown) service delay moves\n"
              "zombies across the 90-minute boundary in both directions.\n",
              g_raw.outbreaks_with_duplicates.size());
}

void BM_LookingGlassLagSweep(benchmark::State& state) {
  zombie::LookingGlassConfig config;
  config.lag = 8 * netbase::kMinute;
  config.stale_snapshot_probability = 0.0;
  zombie::LookingGlassDetector lg(config);
  for (auto _ : state) {
    auto result = lg.detect(g_out.updates, g_out.events);
    benchmark::DoNotOptimize(result.outbreaks.size());
  }
}
BENCHMARK(BM_LookingGlassLagSweep)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// beacon_service — runs the paper's beacon methodology (§4) as a live
// service with the streaming detector (§6 future work): 96 distinct
// IPv6 /48s per day, announced for 15 minutes each, watched in real
// time; zombie alerts and resolutions print as they happen.
//
// Build & run:  ./build/examples/beacon_service

#include <cstdio>

#include "beacon/driver.hpp"
#include "collector/collector.hpp"
#include "netbase/rng.hpp"
#include "zombie/realtime.hpp"

using namespace zombiescope;

int main() {
  // A generated mid-size topology with the beacon origin attached.
  topology::GeneratorParams params;
  params.tier1_count = 4;
  params.tier2_count = 12;
  params.tier3_count = 40;
  netbase::Rng rng(20240604);
  auto topo = topology::generate_hierarchical(params, rng);

  std::vector<bgp::Asn> tier2;
  for (bgp::Asn asn : topo.all_asns())
    if (topo.info(asn).tier == 2) tier2.push_back(asn);
  const bgp::Asn origin = 210312;
  topo.add_as({origin, 3, "beacon-origin"});
  topo.add_link(tier2[0], origin, topology::Relationship::kCustomer);
  topo.add_link(tier2[1], origin, topology::Relationship::kCustomer);

  simnet::Simulation sim(topo, simnet::SimConfig{}, rng.fork());

  // Three collector sessions.
  collector::Collector rrc("rrc00", 12654, netbase::IpAddress::parse("193.0.4.28"));
  std::vector<zombie::PeerKey> peers;
  for (int i = 0; i < 3; ++i) {
    collector::SessionConfig session;
    session.peer_asn = tier2[static_cast<std::size_t>(2 + i)];
    session.peer_address =
        netbase::IpAddress::parse("2001:7f8::" + std::to_string(i + 1));
    rrc.add_peer(sim, session, rng.fork());
    peers.push_back({session.peer_asn, session.peer_address});
  }

  // Fault: one of the monitored ASes misses withdrawals from one
  // provider for two hours around 17:00 — a zero-window-style stall.
  const auto day = netbase::utc(2024, 6, 5);
  simnet::ReceiveStall stall;
  stall.asn = peers[1].asn;
  stall.window = {day + 17 * netbase::kHour, day + 19 * netbase::kHour};
  sim.add_receive_stall(stall);

  // The paper's approach-1 schedule for one day.
  const auto schedule = beacon::LongLivedBeaconSchedule::paper_deployment(
      beacon::LongLivedBeaconSchedule::Approach::kDaily);
  beacon::BeaconDriver driver(sim, origin, /*with_aggregator_clock=*/false);
  driver.drive(schedule.events(day, day + netbase::kDay));
  sim.run_until(day + netbase::kDay + 6 * netbase::kHour);

  std::printf("beacon day complete: %zu events, %zu archived records\n\n",
              driver.ground_truth().size(), rrc.updates().size());

  // Feed the archive through the real-time detector, as if streaming.
  zombie::RealTimeZombieDetector detector{zombie::RealTimeConfig{}};
  detector.on_alert([](const zombie::ZombieAlert& alert) {
    std::printf("[%s] ALERT  %s stuck at %s since withdrawal %s\n",
                netbase::format_utc(alert.raised_at).c_str(),
                alert.prefix.to_string().c_str(), zombie::to_string(alert.peer).c_str(),
                netbase::format_utc(alert.withdrawn_at).c_str());
  });
  detector.on_resolution([](const zombie::ZombieResolution& resolution) {
    std::printf("[%s] CLEAR  %s at %s after %s stuck\n",
                netbase::format_utc(resolution.resolved_at).c_str(),
                resolution.prefix.to_string().c_str(),
                zombie::to_string(resolution.peer).c_str(),
                netbase::format_duration(resolution.stuck_for()).c_str());
  });
  for (const auto& event : driver.ground_truth()) detector.expect(event);
  for (const auto& record : rrc.updates()) detector.ingest(record);
  detector.advance(day + 2 * netbase::kDay);

  std::printf("\ntotals: %d alerts, %d resolutions, %zu still stuck\n",
              detector.alerts_raised(), detector.resolutions(),
              detector.active_zombies().size());
  for (const auto& alert : detector.active_zombies())
    std::printf("  still stuck: %s at %s\n", alert.prefix.to_string().c_str(),
                zombie::to_string(alert.peer).c_str());
  return 0;
}

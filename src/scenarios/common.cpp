#include "scenarios/common.hpp"

#include <algorithm>

#include "mrt/codec.hpp"
#include "obs/trace.hpp"

namespace zombiescope::scenarios {

std::vector<mrt::MrtRecord> through_mrt_codec(const std::vector<mrt::MrtRecord>& records) {
  obs::ScopedSpan span("scenario.mrt_codec");
  return mrt::decode_all(mrt::encode_all(records));
}

std::vector<bgp::Asn> pick_monitor_asns(const topology::Topology& topo, int count,
                                        netbase::Rng& rng,
                                        const std::set<bgp::Asn>& exclude) {
  std::vector<bgp::Asn> candidates;
  for (bgp::Asn asn : topo.all_asns()) {
    if (exclude.contains(asn)) continue;
    const int tier = topo.info(asn).tier;
    if (tier >= 2) candidates.push_back(asn);  // stubs + mid-tier volunteer
  }
  rng.shuffle(candidates);
  if (static_cast<int>(candidates.size()) > count)
    candidates.resize(static_cast<std::size_t>(count));
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

netbase::IpAddress peer_address_for(bgp::Asn asn, int index, bool v6) {
  if (v6) {
    std::array<std::uint16_t, 8> hextets{};
    hextets[0] = 0x2001;
    hextets[1] = 0x7f8;
    hextets[2] = static_cast<std::uint16_t>(asn >> 16);
    hextets[3] = static_cast<std::uint16_t>(asn & 0xffff);
    hextets[7] = static_cast<std::uint16_t>(index + 1);
    return netbase::IpAddress::v6(hextets);
  }
  return netbase::IpAddress::v4(
      {static_cast<std::uint8_t>(185), static_cast<std::uint8_t>((asn >> 8) & 0xff),
       static_cast<std::uint8_t>(asn & 0xff), static_cast<std::uint8_t>(index + 1)});
}

}  // namespace zombiescope::scenarios

file(REMOVE_RECURSE
  "CMakeFiles/table3_missing_zombies.dir/table3_missing_zombies.cpp.o"
  "CMakeFiles/table3_missing_zombies.dir/table3_missing_zombies.cpp.o.d"
  "table3_missing_zombies"
  "table3_missing_zombies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_missing_zombies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// zsroot — withdraw-propagation forensics and root-cause scoring.
//
// Works on the causal provenance the tracer records (obs/causal.hpp):
// per-hop (trace, AS, time, decision) records of how each sampled BGP
// update moved — or died — across the simulated AS graph.
//
//   zsroot tree JOURNAL [--prefix P] [--max-traces N]
//       Reconstructs the propagation trees from a journal written with
//       the `propagation` category enabled and renders them per
//       prefix.
//
//   zsroot localize JOURNAL [--prefix P] [--json]
//       Localizes every withdrawal wave's frontier: the ASes the
//       withdraw reached, and the exact links where it was suppressed
//       or stalled — the boundary between "saw the withdraw" and
//       "never did".
//
//   zsroot score [--seeds N] [--json] [--out FILE]
//       Runs the seeded fault suite (scenarios/faultlab.hpp) and
//       scores both localizers against ground truth: causal frontier
//       localization must name the injected link exactly; the
//       palm-tree heuristic (zombie::infer_root_cause) is graded
//       exact / off-by-one-upstream / wrong against the culprit AS.
//       --out writes the JSON accuracy report regardless of --json.
//
// JOURNAL may be '-' for stdin. Exit codes: 0 ok; 1 scoring found
// localization below 100%; 2 usage; 3 unreadable/empty input.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/causal.hpp"
#include "obs/journal.hpp"
#include "scenarios/faultlab.hpp"
#include "zombie/propagation.hpp"

using namespace zombiescope;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s tree JOURNAL [--prefix P] [--max-traces N]\n"
               "       %s localize JOURNAL [--prefix P] [--json]\n"
               "       %s score [--seeds N] [--json] [--out FILE]\n"
               "       (JOURNAL may be '-' to read from stdin; --version prints build identity)\n",
               argv0, argv0, argv0);
  std::exit(2);
}

struct Options {
  std::string mode;
  std::string journal_path;
  std::optional<netbase::Prefix> prefix;
  std::size_t max_traces = 8;
  int seeds = 5;
  bool json = false;
  std::string out_path;
};

Options parse_options(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Options opt;
  opt.mode = argv[1];
  if (opt.mode != "tree" && opt.mode != "localize" && opt.mode != "score") usage(argv[0]);

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--prefix") {
      const auto parsed = netbase::Prefix::try_parse(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      opt.prefix = *parsed;
    } else if (arg == "--max-traces") {
      opt.max_traces = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (arg == "--seeds") {
      opt.seeds = std::stoi(need_value(i));
      if (opt.seeds < 1) usage(argv[0]);
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--out") {
      opt.out_path = need_value(i);
    } else if (!arg.starts_with("--") && opt.journal_path.empty()) {
      opt.journal_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.mode != "score" && opt.journal_path.empty()) usage(argv[0]);
  return opt;
}

/// Extracts propagation hops from a journal, grouped per prefix.
std::map<netbase::Prefix, std::vector<obs::HopRecord>> load_hops(const Options& opt) {
  std::vector<obs::JournalEvent> events;
  try {
    events = obs::read_journal_file(opt.journal_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "zsroot: %s\n", e.what());
    std::exit(3);
  }
  std::map<netbase::Prefix, std::vector<obs::HopRecord>> by_prefix;
  for (const obs::JournalEvent& event : events) {
    const auto hop = obs::hop_from_event(event);
    if (!hop.has_value()) continue;
    if (opt.prefix.has_value() && hop->prefix != *opt.prefix) continue;
    by_prefix[hop->prefix].push_back(*hop);
  }
  if (by_prefix.empty()) {
    std::fprintf(stderr, "zsroot: no propagation events%s in %s (journal written "
                         "without the 'propagation' category?)\n",
                 opt.prefix.has_value() ? " for that prefix" : "",
                 opt.journal_path.c_str());
    std::exit(3);
  }
  return by_prefix;
}

int run_tree(const Options& opt) {
  for (const auto& [prefix, hops] : load_hops(opt))
    std::fputs(obs::render_propagation_tree(prefix, hops, opt.max_traces).c_str(), stdout);
  return 0;
}

void print_frontier_text(const zombie::FrontierResult& frontier) {
  std::printf("prefix %s trace %llu\n", frontier.prefix.to_string().c_str(),
              static_cast<unsigned long long>(frontier.trace_id));
  std::printf("  reached %zu AS(es):", frontier.reached.size());
  for (const std::uint32_t asn : frontier.reached) std::printf(" %u", asn);
  std::printf("\n");
  if (frontier.culprits.empty()) {
    std::printf("  no dead links: the withdrawal reached everyone it was sent to\n");
    return;
  }
  for (const zombie::CulpritLink& culprit : frontier.culprits)
    std::printf("  died on AS%u -> AS%u (%s) at t=%lld\n", culprit.from_asn,
                culprit.to_asn, std::string(obs::to_string(culprit.decision)).c_str(),
                static_cast<long long>(culprit.time));
}

void print_frontier_json(FILE* out, const zombie::FrontierResult& frontier, bool last) {
  std::fprintf(out, "    {\"prefix\":\"%s\",\"trace_id\":%llu,\"reached\":[",
               frontier.prefix.to_string().c_str(),
               static_cast<unsigned long long>(frontier.trace_id));
  for (std::size_t i = 0; i < frontier.reached.size(); ++i)
    std::fprintf(out, "%s%u", i == 0 ? "" : ",", frontier.reached[i]);
  std::fprintf(out, "],\"culprits\":[");
  for (std::size_t i = 0; i < frontier.culprits.size(); ++i) {
    const zombie::CulpritLink& culprit = frontier.culprits[i];
    std::fprintf(out, "%s{\"from_asn\":%u,\"to_asn\":%u,\"decision\":\"%s\",\"time\":%lld}",
                 i == 0 ? "" : ",", culprit.from_asn, culprit.to_asn,
                 std::string(obs::to_string(culprit.decision)).c_str(),
                 static_cast<long long>(culprit.time));
  }
  std::fprintf(out, "]}%s\n", last ? "" : ",");
}

int run_localize(const Options& opt) {
  std::vector<zombie::FrontierResult> frontiers;
  for (const auto& [prefix, hops] : load_hops(opt)) {
    (void)prefix;
    for (zombie::FrontierResult& frontier : zombie::localize_frontiers(hops))
      frontiers.push_back(std::move(frontier));
  }
  if (frontiers.empty()) {
    std::fprintf(stderr, "zsroot: no withdrawal-rooted traces in the journal\n");
    return 3;
  }
  if (opt.json) {
    std::printf("{\n  \"schema\": \"zsroot-localize-v1\",\n  \"frontiers\": [\n");
    for (std::size_t i = 0; i < frontiers.size(); ++i)
      print_frontier_json(stdout, frontiers[i], i + 1 == frontiers.size());
    std::printf("  ]\n}\n");
  } else {
    for (const zombie::FrontierResult& frontier : frontiers) print_frontier_text(frontier);
  }
  return 0;
}

void write_score_json(FILE* out, const std::vector<scenarios::FaultScenarioResult>& results,
                      const scenarios::FaultSuiteSummary& summary, int seeds) {
  std::fprintf(out, "{\n  \"schema\": \"zsroot-score-v1\",\n  \"seeds\": %d,\n", seeds);
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const scenarios::FaultScenarioResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\":\"%s\",\"kind\":\"%s\",\"injected_from\":%u,"
                 "\"injected_to\":%u,\"culprit_asn\":%u,\"zombies\":%zu,"
                 "\"localized_exact\":%s,\"rootcause_suspect\":%lld,"
                 "\"rootcause_score\":\"%s\"}%s\n",
                 r.spec.name().c_str(), scenarios::to_string(r.spec.kind).c_str(),
                 r.injected_from, r.injected_to, r.culprit_asn, r.zombie_asns.size(),
                 r.localized_exact ? "true" : "false",
                 r.rootcause.suspect.has_value() ? static_cast<long long>(*r.rootcause.suspect)
                                                 : -1ll,
                 scenarios::to_string(r.rootcause_score).c_str(),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"summary\": {\"total\": %d, \"localized_exact\": %d, "
               "\"localization_accuracy\": %.4f, \"rootcause_exact\": %d, "
               "\"rootcause_off_by_one_upstream\": %d, \"rootcause_wrong\": %d}\n}\n",
               summary.total, summary.localized_exact, summary.localization_accuracy(),
               summary.rootcause_exact, summary.rootcause_off_by_one,
               summary.rootcause_wrong);
}

int run_score(const Options& opt) {
  if constexpr (!obs::kCausalCompiledIn) {
    std::fprintf(stderr, "zsroot: built with ZS_CAUSAL_ENABLED=0; scoring needs the "
                         "causal tracer\n");
    return 3;
  }
  std::vector<scenarios::FaultScenarioResult> results;
  for (const scenarios::FaultScenarioSpec& spec : scenarios::default_fault_suite(opt.seeds))
    results.push_back(scenarios::run_fault_scenario(spec));
  const scenarios::FaultSuiteSummary summary = scenarios::summarize(results);

  if (opt.json) {
    write_score_json(stdout, results, summary, opt.seeds);
  } else {
    std::printf("zsroot score: %d scenarios (%d seeds x shapes x fault kinds)\n\n",
                summary.total, opt.seeds);
    std::printf("%-52s %-10s %s\n", "scenario", "localized", "infer_root_cause");
    for (const scenarios::FaultScenarioResult& r : results)
      std::printf("%-52s %-10s %s\n", r.spec.name().c_str(),
                  r.localized_exact ? "exact" : "MISSED",
                  scenarios::to_string(r.rootcause_score).c_str());
    std::printf("\nlocalization: %d/%d exact (%.1f%%)\n", summary.localized_exact,
                summary.total, 100.0 * summary.localization_accuracy());
    std::printf("infer_root_cause: exact %d/%d (%.1f%%), off-by-one-upstream %d/%d "
                "(%.1f%%), wrong %d/%d (%.1f%%)\n",
                summary.rootcause_exact, summary.total,
                100.0 * summary.rootcause_exact_rate(), summary.rootcause_off_by_one,
                summary.total,
                summary.total == 0 ? 0.0
                                   : 100.0 * summary.rootcause_off_by_one / summary.total,
                summary.rootcause_wrong, summary.total,
                summary.total == 0 ? 0.0 : 100.0 * summary.rootcause_wrong / summary.total);
  }

  if (!opt.out_path.empty()) {
    FILE* out = std::fopen(opt.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "zsroot: cannot write %s\n", opt.out_path.c_str());
      return 3;
    }
    write_score_json(out, results, summary, opt.seeds);
    std::fclose(out);
  }
  return summary.localized_exact == summary.total ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::puts(obs::identity_line("zsroot").c_str());
      return 0;
    }
  }
  const Options opt = parse_options(argc, argv);
  if (opt.mode == "tree") return run_tree(opt);
  if (opt.mode == "localize") return run_localize(opt);
  return run_score(opt);
}

// simnet/simulation.hpp — the discrete-event inter-domain BGP
// simulator.
//
// The Simulation owns a router per AS, a priority event queue, and
// per-link propagation delays. Beacon drivers inject originate /
// withdraw actions; faults are applied at message send (withdrawal
// suppression) and receive (stalls) time; scheduled session resets
// flush and re-advertise, which is the mechanism behind the paper's
// zombie *resurrection* phenomenon. Collectors observe routers
// through MonitorSink hooks and turn what they see into MRT — the
// detectors never touch simulator state directly.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <variant>
#include <vector>

#include "netbase/rng.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "rpki/rov.hpp"
#include "simnet/faults.hpp"
#include "simnet/router.hpp"
#include "topology/topology.hpp"

namespace zombiescope::simnet {

struct SimConfig {
  /// Per-link one-way propagation + processing delay bounds (seconds);
  /// drawn once per link, deterministic under the seed.
  netbase::Duration min_link_delay = 2;
  netbase::Duration max_link_delay = 45;
  /// How long a reset session stays down before re-establishing.
  netbase::Duration session_reset_downtime = 60;
};

/// Observer interface for collector peering sessions. `on_route_change`
/// fires whenever the monitored AS's best route for a prefix changes —
/// this is the update stream a RIS collector would receive from a
/// full-feed peer.
class MonitorSink {
 public:
  virtual ~MonitorSink() = default;
  virtual void on_route_change(netbase::TimePoint t, const RibChange& change) = 0;
};

/// Counters for benchmarks and sanity checks. The event loop updates
/// this plain struct (single-threaded, no atomic cost on the hot
/// path); flush_metrics() bridges the deltas onto the zsobs registry
/// (zs_simnet_* metrics) at run boundaries.
struct SimStats {
  std::uint64_t events_processed = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_suppressed = 0;  // withdrawal-suppression hits
  std::uint64_t messages_stalled = 0;     // receive-stall drops
  std::uint64_t rib_changes = 0;
};

class Simulation {
 public:
  Simulation(const topology::Topology& topo, const SimConfig& config, netbase::Rng rng);

  // --- RPKI wiring (optional) -------------------------------------
  /// Attaches the ROA table. Routers with kCompliant policy re-validate
  /// at every ROA change time that falls inside a run.
  void set_roa_table(const rpki::RoaTable* roas);
  void set_rov_policy(bgp::Asn asn, rpki::RovPolicy policy);

  // --- fault injection ---------------------------------------------
  void add_withdrawal_suppression(const WithdrawalSuppression& fault);
  void add_receive_stall(const ReceiveStall& fault);
  /// Schedules a reset of the (a, b) session at `at`; the session
  /// re-establishes after config.session_reset_downtime.
  void schedule_session_reset(netbase::TimePoint at, bgp::Asn a, bgp::Asn b);

  /// Schedules an outage with explicit down/up instants. An outage
  /// spanning a withdrawal makes the downed neighbor miss it; on
  /// re-establishment the infected side re-advertises its stale table
  /// — the *resurrection* mechanism.
  void schedule_session_outage(netbase::TimePoint down_at, netbase::TimePoint up_at,
                               bgp::Asn a, bgp::Asn b);

  // --- origination --------------------------------------------------
  /// Schedules AS `origin` to start announcing `prefix` at `at`.
  void announce(netbase::TimePoint at, bgp::Asn origin, const netbase::Prefix& prefix,
                bgp::PathAttributes attributes = {});
  /// Schedules AS `origin` to withdraw `prefix` at `at`.
  void withdraw(netbase::TimePoint at, bgp::Asn origin, const netbase::Prefix& prefix);

  // --- observation ---------------------------------------------------
  /// Attaches a monitor to an AS; every best-route change of that AS is
  /// reported. Multiple monitors per AS are allowed (multiple router
  /// sessions of the same peer AS, as with the paper's AS211509).
  void attach_monitor(bgp::Asn asn, MonitorSink* sink);

  /// Runs an arbitrary callback inside the event loop at `at` (used by
  /// collectors for RIB dumps and monitor-session resets).
  void schedule_callback(netbase::TimePoint at, std::function<void()> fn);

  /// Drops every learned route for `prefix` at `asn` and propagates
  /// the resulting withdrawals — the hook used by route-status
  /// auditors (RoST) to eliminate a zombie. Returns true if a route
  /// was actually removed. Must only be called from inside the event
  /// loop (a scheduled callback).
  bool evict_prefix(bgp::Asn asn, const netbase::Prefix& prefix);

  // --- execution ------------------------------------------------------
  /// Processes all events with time <= until.
  void run_until(netbase::TimePoint until);
  /// Processes everything outstanding.
  void run_all();

  netbase::TimePoint now() const { return now_; }
  const SimStats& stats() const { return stats_; }

  /// Publishes stats deltas since the last flush to the global metrics
  /// registry and refreshes the event-queue-depth gauge. Called
  /// automatically when run_until()/run_all() return; callable any
  /// time for mid-run snapshots.
  void flush_metrics();
  const Router& router(bgp::Asn asn) const;
  Router& router(bgp::Asn asn);
  const topology::Topology& topo() const { return topo_; }

  /// One-way delay of the (a, b) link.
  netbase::Duration link_delay(bgp::Asn a, bgp::Asn b) const;

 private:
  struct AnnounceDelivery {
    bgp::Asn from, to;
    netbase::Prefix prefix;
    RouteEntry route;  // path already includes `from`'s prepend
    obs::TraceContext trace;  // causal provenance; id 0 = unsampled
  };
  struct WithdrawDelivery {
    bgp::Asn from, to;
    netbase::Prefix prefix;
    obs::TraceContext trace;
  };
  struct OriginateAction {
    bgp::Asn origin;
    netbase::Prefix prefix;
    bgp::PathAttributes attributes;
    bool announce = true;
  };
  struct SessionDown {
    bgp::Asn a, b;
  };
  struct SessionUp {
    bgp::Asn a, b;
  };
  struct Callback {
    std::function<void()> fn;
  };
  struct RovChange {};

  using Payload = std::variant<AnnounceDelivery, WithdrawDelivery, OriginateAction,
                               SessionDown, SessionUp, Callback, RovChange>;

  struct Event {
    netbase::TimePoint time;
    std::uint64_t seq;
    Payload payload;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.seq > b.seq;
    }
  };

  void push(netbase::TimePoint at, Payload payload);
  void process(Event& event);

  /// Turns a RibChange at `router_asn` into per-neighbor export
  /// messages + monitor notifications. `trace` is the causal context
  /// of the update that caused the change (unsampled by default);
  /// exports continue it one hop further.
  void apply_change(netbase::TimePoint t, bgp::Asn router_asn, const RibChange& change,
                    obs::TraceContext trace = {});

  /// Starts a causal trace rooted at `asn` for a locally-triggered
  /// change (session flush, eviction, ROV re-validation) and records
  /// its `originated` hop. Kind follows the change's polarity.
  obs::TraceContext begin_local_trace(netbase::TimePoint t, bgp::Asn asn,
                                      const RibChange& change);

  bool link_down(bgp::Asn a, bgp::Asn b) const;
  bool suppression_matches(netbase::TimePoint t, bgp::Asn from, bgp::Asn to,
                           const netbase::Prefix& prefix);
  bool stall_matches(netbase::TimePoint t, bgp::Asn to, bgp::Asn from,
                     netbase::AddressFamily family) const;
  void readvertise_full_table(netbase::TimePoint t, bgp::Asn from, bgp::Asn to);

  const topology::Topology& topo_;
  SimConfig config_;
  netbase::Rng rng_;
  std::map<bgp::Asn, Router> routers_;
  std::map<std::pair<bgp::Asn, bgp::Asn>, netbase::Duration> delays_;
  std::set<std::pair<bgp::Asn, bgp::Asn>> down_links_;  // normalized (min, max)
  std::vector<WithdrawalSuppression> suppressions_;
  std::vector<ReceiveStall> stalls_;
  std::multimap<bgp::Asn, MonitorSink*> monitors_;
  const rpki::RoaTable* roas_ = nullptr;
  std::set<netbase::TimePoint> scheduled_rov_times_;

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  netbase::TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  SimStats stats_;
  SimStats flushed_;  // portion of stats_ already published to the registry

  obs::Counter m_events_;
  obs::Counter m_delivered_;
  obs::Counter m_suppressed_;
  obs::Counter m_stalled_;
  obs::Counter m_rib_changes_;
  obs::Gauge m_queue_depth_;
};

}  // namespace zombiescope::simnet

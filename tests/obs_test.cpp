// Tests for the zsobs telemetry subsystem: registry semantics,
// histogram buckets and quantiles, span nesting and ring-buffer
// overflow, exporter output, and multi-threaded counter updates.

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zombiescope::obs {
namespace {

TEST(ObsCounter, IncrementAndValue) {
  Registry registry;
  Counter c = registry.counter("zs_test_events_total");
  EXPECT_TRUE(c.bound());
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounter, UnboundHandleIsNoOp) {
  Counter c;
  EXPECT_FALSE(c.bound());
  c.inc();  // must not crash
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ReRegistrationSharesTheCell) {
  Registry registry;
  Counter a = registry.counter("zs_test_shared_total");
  Counter b = registry.counter("zs_test_shared_total");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(ObsGauge, SetAndAdd) {
  Registry registry;
  Gauge g = registry.gauge("zs_test_depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsRegistry, ResetZeroesButKeepsHandles) {
  Registry registry;
  Counter c = registry.counter("zs_test_reset_total");
  Gauge g = registry.gauge("zs_test_reset_depth");
  Histogram h = registry.histogram("zs_test_reset_seconds", {1.0, 2.0});
  c.inc(9);
  g.set(9);
  h.observe(1.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // handle still valid
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsHistogram, BucketBoundariesAreInclusiveUpperBounds) {
  Registry registry;
  Histogram h = registry.histogram("zs_test_bytes", {1.0, 2.0, 5.0});
  // le semantics: a value equal to the bound lands in that bucket.
  h.observe(0.5);  // bucket 0 (le 1)
  h.observe(1.0);  // bucket 0 (le 1)
  h.observe(1.5);  // bucket 1 (le 2)
  h.observe(5.0);  // bucket 2 (le 5)
  h.observe(9.0);  // +Inf bucket
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* s = snap.histogram("zs_test_bytes");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->counts.size(), 4u);
  EXPECT_EQ(s->counts[0], 2u);
  EXPECT_EQ(s->counts[1], 1u);
  EXPECT_EQ(s->counts[2], 1u);
  EXPECT_EQ(s->counts[3], 1u);
  EXPECT_EQ(s->count, 5u);
  EXPECT_DOUBLE_EQ(s->sum, 0.5 + 1.0 + 1.5 + 5.0 + 9.0);
}

TEST(ObsHistogram, QuantileInterpolatesInsideTheBucket) {
  Registry registry;
  Histogram h = registry.histogram("zs_test_latency", {1.0, 2.0, 4.0});
  // 10 observations uniformly inside (1, 2]: the bucket spans rank
  // 1..10, so the median interpolates to the middle of the bucket.
  for (int i = 0; i < 10; ++i) h.observe(1.5);
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* s = snap.histogram("zs_test_latency");
  ASSERT_NE(s, nullptr);
  const double median = s->quantile(0.5);
  EXPECT_GT(median, 1.0);
  EXPECT_LE(median, 2.0);
  // All mass in one bucket: q=1 hits the bucket's upper bound.
  EXPECT_DOUBLE_EQ(s->quantile(1.0), 2.0);
}

TEST(ObsHistogram, RejectsNonIncreasingBounds) {
  Registry registry;
  EXPECT_THROW(registry.histogram("zs_test_bad", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("zs_test_bad2", {1.0, 1.0}), std::invalid_argument);
}

TEST(ObsSnapshot, LookupByName) {
  Registry registry;
  registry.counter("zs_test_b_total").inc(2);
  registry.counter("zs_test_a_total").inc(1);
  registry.gauge("zs_test_g").set(5);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(snap.counters[0].first, "zs_test_a_total");
  const std::uint64_t* a = snap.counter("zs_test_a_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(snap.counter("zs_test_missing"), nullptr);
  const std::int64_t* g = snap.gauge("zs_test_g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(*g, 5);
}

TEST(ObsTrace, SpansNestViaThreadLocalStack) {
  Tracer tracer(16);
  {
    ScopedSpan outer("outer", tracer);
    { ScopedSpan inner("inner", tracer); }
    { ScopedSpan inner2("inner2", tracer); }
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Children complete before the parent, so they come first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "inner2");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].parent, 0u);  // root
  EXPECT_EQ(spans[0].parent, spans[2].id);
  EXPECT_EQ(spans[1].parent, spans[2].id);
  // The parent's window covers each child's.
  EXPECT_LE(spans[2].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[2].end_ns(), spans[1].end_ns());
}

TEST(ObsTrace, RingBufferOverflowKeepsNewestSpans) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) ScopedSpan span("span" + std::to_string(i), tracer);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first among the surviving (newest) four.
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[3].name, "span9");
}

TEST(ObsTrace, OverflowCountsDroppedSpansIntoBoundCounter) {
  Registry registry;
  Tracer tracer(4);
  tracer.set_dropped_counter(registry.counter("zs_obs_spans_dropped_total"));
  for (int i = 0; i < 10; ++i) ScopedSpan span("span" + std::to_string(i), tracer);
  EXPECT_EQ(tracer.dropped(), 6u);
  const Snapshot snap = registry.snapshot();
  const std::uint64_t* dropped = snap.counter("zs_obs_spans_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(*dropped, 6u);
}

TEST(ObsTrace, GlobalTracerExportsDroppedSpansMetric) {
  // The global tracer binds its drop counter at first use, so the
  // series is present in /metrics scrapes even before any overflow.
  Tracer::global();
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_NE(snap.counter("zs_obs_spans_dropped_total"), nullptr);
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  Tracer tracer(16);
  tracer.set_enabled(false);
  { ScopedSpan span("ignored", tracer); }
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(ObsExport, PrometheusGoldenAndFormatCheck) {
  Registry registry;
  registry.counter("zs_test_events_total").inc(3);
  registry.gauge("zs_test_depth").set(7);
  Histogram h = registry.histogram("zs_test_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE zs_test_events_total counter\nzs_test_events_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zs_test_depth gauge\nzs_test_depth 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zs_test_seconds histogram\n"), std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(text.find("zs_test_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("zs_test_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("zs_test_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("zs_test_seconds_count 3\n"), std::string::npos);
  EXPECT_TRUE(prometheus_format_ok(text));
}

TEST(ObsExport, PrometheusExportsHistogramQuantiles) {
  Registry registry;
  Histogram h = registry.histogram("zs_test_seconds", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE zs_test_seconds_quantile gauge\n"), std::string::npos);
  EXPECT_NE(text.find("zs_test_seconds_quantile{q=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("zs_test_seconds_quantile{q=\"0.95\"} "), std::string::npos);
  EXPECT_NE(text.find("zs_test_seconds_quantile{q=\"0.99\"} "), std::string::npos);
  EXPECT_TRUE(prometheus_format_ok(text));
}

TEST(ObsExport, JsonExportsHistogramQuantiles) {
  Registry registry;
  Histogram h = registry.histogram("zs_test_seconds", {1.0, 2.0});
  // All mass in (1, 2]: every quantile lands inside that bucket.
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  const std::string json = to_json(registry.snapshot(), {});
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p95\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
}

TEST(ObsExport, PrometheusFormatCheckRejectsMalformedInput) {
  EXPECT_FALSE(prometheus_format_ok("3no_leading_digit_allowed 1\n"));
  EXPECT_FALSE(prometheus_format_ok("name_without_value\n"));
  EXPECT_FALSE(prometheus_format_ok("name not_a_number\n"));
  EXPECT_FALSE(prometheus_format_ok("# TYPE zs_x banana\n"));
  // A histogram family missing its _sum series fails the check.
  EXPECT_FALSE(prometheus_format_ok(
      "# TYPE zs_h histogram\nzs_h_bucket{le=\"+Inf\"} 1\nzs_h_count 1\n"));
  EXPECT_TRUE(prometheus_format_ok(""));
}

TEST(ObsExport, JsonSnapshotSchema) {
  Registry registry;
  registry.counter("zs_test_events_total").inc(5);
  registry.histogram("zs_test_seconds", {1.0}).observe(0.5);
  Tracer tracer(8);
  { ScopedSpan span("stage", tracer); }
  const auto spans = tracer.snapshot();
  const std::string json = to_json(registry.snapshot(), spans);
  EXPECT_NE(json.find("\"schema\": \"zsobs-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"zs_test_events_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [1]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stage\""), std::string::npos);

  const std::string trace = trace_to_json(spans);
  EXPECT_NE(trace.find("\"schema\": \"zsobs-trace-v1\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"stage\""), std::string::npos);
}

TEST(ObsExport, PrometheusLabelEscaping) {
  // Exposition rules for label values: backslash, double quote and
  // newline must be escaped; everything else passes through.
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prometheus_escape_label("quo\"te"), "quo\\\"te");
  EXPECT_EQ(prometheus_escape_label("new\nline"), "new\\nline");
  EXPECT_EQ(prometheus_escape_label("all\\three\"at\nonce"),
            "all\\\\three\\\"at\\nonce");
  // Label values may legally contain } and , unescaped.
  EXPECT_EQ(prometheus_escape_label("a},b"), "a},b");
}

TEST(ObsExport, PrometheusHelpEscaping) {
  // HELP text escapes backslash and newline but keeps literal quotes.
  EXPECT_EQ(prometheus_escape_help("plain help"), "plain help");
  EXPECT_EQ(prometheus_escape_help("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_help("two\nlines"), "two\\nlines");
  EXPECT_EQ(prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST(ObsExport, FormatCheckAcceptsEscapedLabelValues) {
  // A label value containing }, comma, and escaped quotes must pass
  // the validator (the quote-aware scanner, not a naive find('}')).
  EXPECT_TRUE(prometheus_format_ok(
      "zs_x{path=\"dir/file\",note=\"a}b,c\\\"d\\\\e\"} 1\n"));
  // An unterminated label string fails.
  EXPECT_FALSE(prometheus_format_ok("zs_x{note=\"unterminated} 1\n"));
}

TEST(ObsExport, BuildInfoGaugeIsExported) {
  Registry registry;
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE zs_build_info gauge\n"), std::string::npos);
  EXPECT_NE(text.find("zs_build_info{git_sha=\""), std::string::npos);
  EXPECT_NE(text.find("compiler=\""), std::string::npos);
  EXPECT_NE(text.find("build_type=\""), std::string::npos);
  EXPECT_NE(text.find("sanitizer=\""), std::string::npos);
  EXPECT_NE(text.find("\"} 1\n"), std::string::npos);
  EXPECT_TRUE(prometheus_format_ok(text));

  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"build_info\": {"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
}

TEST(ObsExport, JsonExtraSectionsAppearAtTopLevel) {
  Registry registry;
  const JsonSections extra = {{"bench", "\"micro\""},
                              {"wall_time_s", "1.25"},
                              {"peak_rss_bytes", "4096"}};
  const std::string json = to_json(registry.snapshot(), {}, extra);
  EXPECT_NE(json.find("\"bench\": \"micro\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_time_s\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\": 4096"), std::string::npos);
}

TEST(ObsExport, ParseFormat) {
  EXPECT_EQ(parse_format("prom"), Format::kPrometheus);
  EXPECT_EQ(parse_format("prometheus"), Format::kPrometheus);
  EXPECT_EQ(parse_format("json"), Format::kJson);
  EXPECT_EQ(parse_format("xml"), std::nullopt);
}

TEST(ObsConcurrency, CountersAreThreadSafe) {
  Registry registry;
  Counter c = registry.counter("zs_test_mt_total");
  Histogram h = registry.histogram("zs_test_mt_seconds", duration_buckets());
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(0.01);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace zombiescope::obs

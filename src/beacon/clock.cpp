#include "beacon/clock.hpp"

namespace zombiescope::beacon {

using netbase::CivilTime;
using netbase::IpAddress;
using netbase::TimePoint;

IpAddress encode_aggregator_clock(TimePoint announced_at) {
  const TimePoint month_start = netbase::start_of_month(announced_at);
  const auto seconds = static_cast<std::uint32_t>(announced_at - month_start);
  return IpAddress::v4({10, static_cast<std::uint8_t>((seconds >> 16) & 0xff),
                        static_cast<std::uint8_t>((seconds >> 8) & 0xff),
                        static_cast<std::uint8_t>(seconds & 0xff)});
}

std::optional<TimePoint> decode_aggregator_clock(const IpAddress& address,
                                                 TimePoint observed_at) {
  if (!address.is_v4() || address.bytes()[0] != 10) return std::nullopt;
  const std::uint32_t seconds = (static_cast<std::uint32_t>(address.bytes()[1]) << 16) |
                                (static_cast<std::uint32_t>(address.bytes()[2]) << 8) |
                                static_cast<std::uint32_t>(address.bytes()[3]);
  // Try the observation month first, then walk back month by month
  // until the candidate is not in the future.
  CivilTime civil = netbase::to_civil(observed_at);
  for (int back = 0; back < 24; ++back) {
    CivilTime month{civil.year, civil.month, 1, 0, 0, 0};
    const TimePoint candidate = netbase::from_civil(month) + seconds;
    if (candidate <= observed_at) return candidate;
    if (--civil.month == 0) {
      civil.month = 12;
      --civil.year;
    }
  }
  return std::nullopt;  // unreachable for sane inputs
}

bgp::Aggregator make_beacon_aggregator(bgp::Asn asn, TimePoint announced_at) {
  return bgp::Aggregator{asn, encode_aggregator_clock(announced_at)};
}

}  // namespace zombiescope::beacon


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zombie/analyzer.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/analyzer.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/analyzer.cpp.o.d"
  "/root/repo/src/zombie/interval_detector.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/interval_detector.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/interval_detector.cpp.o.d"
  "/root/repo/src/zombie/longlived.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/longlived.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/longlived.cpp.o.d"
  "/root/repo/src/zombie/lookingglass.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/lookingglass.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/lookingglass.cpp.o.d"
  "/root/repo/src/zombie/noisy.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/noisy.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/noisy.cpp.o.d"
  "/root/repo/src/zombie/realtime.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/realtime.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/realtime.cpp.o.d"
  "/root/repo/src/zombie/rootcause.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/rootcause.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/rootcause.cpp.o.d"
  "/root/repo/src/zombie/state.cpp" "src/zombie/CMakeFiles/zs_zombie.dir/state.cpp.o" "gcc" "src/zombie/CMakeFiles/zs_zombie.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/beacon/CMakeFiles/zs_beacon.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/zs_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/zs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/zs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/zs_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/zs_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

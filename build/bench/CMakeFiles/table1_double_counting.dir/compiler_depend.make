# Empty compiler generated dependencies file for table1_double_counting.
# This may be replaced when dependencies are built.

// Tests for Route Status Transparency: the log semantics and the
// auditor's ability to eliminate zombies (and nothing else).

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "rost/rost.hpp"

namespace zombiescope::rost {
namespace {

using netbase::IpAddress;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::Rng;
using netbase::utc;
using topology::Relationship;
using topology::Topology;

const Prefix kBeacon = Prefix::parse("2a0d:3dc1:1200::/48");

TEST(TransparencyLog, StatusFollowsPublications) {
  TransparencyLog log;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  EXPECT_EQ(log.status(kBeacon, 210312, t0), RouteStatus::kUnknown);
  log.publish_announce(kBeacon, 210312, t0);
  EXPECT_EQ(log.status(kBeacon, 210312, t0), RouteStatus::kAnnounced);
  log.publish_withdraw(kBeacon, 210312, t0 + 15 * kMinute);
  EXPECT_EQ(log.status(kBeacon, 210312, t0 + 10 * kMinute), RouteStatus::kAnnounced);
  EXPECT_EQ(log.status(kBeacon, 210312, t0 + 20 * kMinute), RouteStatus::kWithdrawn);
  // A different origin is a different key.
  EXPECT_EQ(log.status(kBeacon, 4601, t0 + 20 * kMinute), RouteStatus::kUnknown);
}

TEST(TransparencyLog, VisibilityDelayHidesFreshEntries) {
  TransparencyLog log(10 * kMinute);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  log.publish_announce(kBeacon, 210312, t0);
  EXPECT_EQ(log.status(kBeacon, 210312, t0 + 5 * kMinute), RouteStatus::kUnknown);
  EXPECT_EQ(log.status(kBeacon, 210312, t0 + 11 * kMinute), RouteStatus::kAnnounced);
}

TEST(TransparencyLog, PublishEventsCoversSchedule) {
  TransparencyLog log;
  const auto schedule = beacon::LongLivedBeaconSchedule::paper_deployment(
      beacon::LongLivedBeaconSchedule::Approach::kDaily);
  const auto day = utc(2024, 6, 5);
  const auto events = schedule.events(day, day + netbase::kDay);
  publish_events(log, 210312, events);
  EXPECT_EQ(log.publication_count(), events.size() * 2);
  EXPECT_EQ(log.status(schedule.prefix_for(day), 210312, day + 5 * kMinute),
            RouteStatus::kAnnounced);
  EXPECT_EQ(log.status(schedule.prefix_for(day), 210312, day + kHour),
            RouteStatus::kWithdrawn);
}

// The quickstart diamond with a withdrawal suppression toward T1b.
Topology diamond() {
  Topology topo;
  topo.add_as({1, 1, "T1a"});
  topo.add_as({2, 1, "T1b"});
  topo.add_as({11, 2, "M1"});
  topo.add_as({13, 2, "M3"});
  topo.add_as({100, 3, "origin"});
  topo.add_link(1, 2, Relationship::kPeer);
  topo.add_link(1, 11, Relationship::kCustomer);
  topo.add_link(2, 13, Relationship::kCustomer);
  topo.add_link(11, 100, Relationship::kCustomer);
  topo.add_link(13, 100, Relationship::kCustomer);
  return topo;
}

struct ZombieSetup {
  Topology topo = diamond();
  simnet::Simulation sim;
  TransparencyLog log;
  netbase::TimePoint t0 = utc(2024, 6, 4, 12, 0, 0);

  ZombieSetup() : sim(topo, simnet::SimConfig{2, 8, 60}, Rng(5)) {
    simnet::WithdrawalSuppression fault;
    fault.from_asn = 13;
    fault.to_asn = 2;
    fault.window = {t0, std::nullopt};
    sim.add_withdrawal_suppression(fault);
    sim.announce(t0, 100, kBeacon);
    sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
    log.publish_announce(kBeacon, 100, t0);
    log.publish_withdraw(kBeacon, 100, t0 + 15 * kMinute);
  }
};

TEST(RostAuditor, EnrolledAsEvictsItsZombie) {
  ZombieSetup s;
  RostAuditor auditor(s.sim, s.log, RostConfig{30 * kMinute});
  auditor.enroll(2);
  auditor.schedule(s.t0, s.t0 + 6 * kHour);
  s.sim.run_until(s.t0 + 6 * kHour);
  EXPECT_EQ(s.sim.router(2).best(kBeacon), nullptr);
  EXPECT_GE(auditor.evictions(), 1);
}

TEST(RostAuditor, WithoutEnrollmentZombieSurvives) {
  ZombieSetup s;
  RostAuditor auditor(s.sim, s.log, RostConfig{30 * kMinute});
  auditor.schedule(s.t0, s.t0 + 6 * kHour);  // nobody enrolled
  s.sim.run_until(s.t0 + 6 * kHour);
  EXPECT_NE(s.sim.router(2).best(kBeacon), nullptr);
  EXPECT_EQ(auditor.evictions(), 0);
}

TEST(RostAuditor, EvictionPropagatesDownstream) {
  // The zombie spreads from T1b to T1a and M1 via the peer link.
  // Enrolling only T1b cleans the whole region: the eviction produces
  // real withdrawals that propagate.
  ZombieSetup s;
  s.sim.run_until(s.t0 + 2 * kHour);
  ASSERT_NE(s.sim.router(1).best(kBeacon), nullptr);  // infected via T1b
  RostAuditor auditor(s.sim, s.log, RostConfig{30 * kMinute});
  auditor.enroll(2);
  auditor.schedule(s.t0 + 2 * kHour, s.t0 + 4 * kHour);
  s.sim.run_until(s.t0 + 5 * kHour);
  EXPECT_EQ(s.sim.router(2).best(kBeacon), nullptr);
  EXPECT_EQ(s.sim.router(1).best(kBeacon), nullptr);
  EXPECT_EQ(s.sim.router(11).best(kBeacon), nullptr);
}

TEST(RostAuditor, DoesNotEvictLegitimateRoutes) {
  ZombieSetup s;
  // A second prefix that stays legitimately announced.
  const Prefix legit = Prefix::parse("2a0d:3dc1:aaaa::/48");
  s.sim.announce(s.t0, 100, legit);
  s.log.publish_announce(legit, 100, s.t0);
  RostAuditor auditor(s.sim, s.log, RostConfig{30 * kMinute});
  for (bgp::Asn asn : s.topo.all_asns()) auditor.enroll(asn);
  auditor.schedule(s.t0, s.t0 + 6 * kHour);
  s.sim.run_until(s.t0 + 6 * kHour);
  EXPECT_EQ(s.sim.router(2).best(kBeacon), nullptr);      // zombie gone
  EXPECT_NE(s.sim.router(2).best(legit), nullptr);        // legit route intact
  EXPECT_NE(s.sim.router(1).best(legit), nullptr);
}

TEST(RostAuditor, UnknownOriginIsLeftAlone) {
  // Routes whose origin never publishes (non-participating origin)
  // must not be touched.
  ZombieSetup s;
  const Prefix foreign = Prefix::parse("2001:db8:77::/48");
  s.sim.announce(s.t0, 100, foreign);  // never published to the log
  RostAuditor auditor(s.sim, s.log, RostConfig{30 * kMinute});
  for (bgp::Asn asn : s.topo.all_asns()) auditor.enroll(asn);
  auditor.schedule(s.t0, s.t0 + 2 * kHour);
  s.sim.run_until(s.t0 + 2 * kHour);
  EXPECT_NE(s.sim.router(2).best(foreign), nullptr);
}

}  // namespace
}  // namespace zombiescope::rost

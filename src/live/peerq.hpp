// live/peerq.hpp — zspeerq, live per-peer feed-quality accounting.
//
// The paper's central methodological fix is per-peer data quality:
// a handful of noisy peers (AS16347 at ~42.8 % stuck probability vs a
// 1.58 % average, Tables 4/5) must be detected and excluded or zombie
// counts are grossly inflated. Batch detection has that logic in
// zombie::NoisyPeerFilter; this module is its streaming twin for the
// zslive service, plus the feed-health bookkeeping an operator needs
// before trusting any live zombie count: who is feeding, who went
// silent, who misses beacon cycles.
//
// Three pieces:
//
//   PeerQAccumulator      per-shard, worker-private rolling counters
//                         updated on the hot path (update/withdrawal
//                         counts, beacon-cycle visibility, last-seen
//                         stream time, session resets, stuck routes).
//                         Snapshotted into an immutable
//                         PeerQShardSnapshot at publish time.
//   merge + PeerTable     the service merges shard snapshots into one
//                         epoch-versioned table. Prefix-routed
//                         counters sum across shards; broadcast-
//                         derived ones (session resets) and last-seen
//                         take the max, because every shard saw the
//                         same state-change records.
//   PeerTableBuilder      the online noisy-peer classifier. The raw
//                         rule is byte-for-byte NoisyPeerFilter's:
//                         noisy iff p > probability_floor AND
//                         p > median_multiplier x median(all peers'
//                         p), with p = stuck / closed beacon cycles.
//                         The *published* classification adds two
//                         stabilizers so live output cannot flap:
//                         a minimum closed-cycle count plus a Wilson
//                         lower-bound gate before a peer may enter,
//                         and an enter/exit dwell (the raw verdict
//                         must repeat over `dwell` consecutive data
//                         epochs). build(converge=true) — what
//                         finalize() runs after a replay — snaps the
//                         published state to the raw memoryless rule,
//                         which is how the live classifier lands on
//                         the exact batch NoisyPeerFilter set
//                         (tests/live_e2e_test.cpp pins this).
//
// Equivalence accounting (why the live numbers equal batch):
//   * denominator: every non-superseded beacon event delivered to a
//     shard opens one cycle; advance() closes it at
//     withdraw + threshold. After finalize() the summed closed-cycle
//     count equals LongLivedResult::total_announcements.
//   * numerator: LiveService feeds every batch-equivalent emerge
//     alert (raised exactly at the deadline; resurrections excluded)
//     into on_stuck() — one per (beacon event, peer), exactly one
//     batch ZombieRoute.
//   * universe: cells are created by BGP4MP updates, RIB entries
//     resolved through the last PeerIndexTable, and stuck routes —
//     the same membership rule StateTracker::peers() + the filter's
//     stats() produce. Session state changes never create cells.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "beacon/schedule.hpp"
#include "mrt/record.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "zombie/realtime.hpp"
#include "zombie/types.hpp"

namespace zombiescope::live {

struct PeerQConfig {
  /// Master switch: false compiles nothing out but skips every hook,
  /// snapshot, and endpoint body (the A/B the peerq_overhead bench
  /// measures).
  bool enabled = true;
  /// The raw classification rule — identical to zombie::NoisyPeerConfig.
  double probability_floor = 0.05;
  double median_multiplier = 4.0;
  /// Live-entry stabilizers (bypassed by build(converge=true)): a peer
  /// may only *enter* the published noisy set once at least
  /// `min_cycles` beacon cycles closed service-wide and the Wilson
  /// lower bound of its stuck probability clears the floor — thin
  /// early data cannot brand a peer.
  std::uint64_t min_cycles = 20;
  /// Enter/exit dwell: the raw verdict must disagree with the
  /// published state over this many consecutive data epochs before
  /// the published state flips.
  int dwell = 3;
  /// A peer with updates is "silent" once the stream clock moved this
  /// far past its last update (journal kPeerSilent, counted in
  /// silent_count / feeding_count).
  netbase::Duration silent_after = 30 * netbase::kMinute;
  /// Bounded-cardinality top-K offender gauges
  /// (zs_peer_topk_stuck_ppm_r<r> / zs_peer_topk_asn_r<r>).
  std::size_t top_k = 3;
};

/// Wilson score interval for a binomial proportion — the streaming
/// confidence band served with every stuck-probability estimate
/// (z = 1.96 ≙ 95 %). {0, 1} when trials == 0 (no evidence yet).
struct WilsonInterval {
  double low = 0.0;
  double high = 1.0;
};
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z = 1.96);

/// Rolling per-peer counters one shard worker owns. Plain integers —
/// worker-private, published only via immutable snapshots.
struct PeerCell {
  std::uint64_t updates = 0;        // BGP4MP update messages
  std::uint64_t announcements = 0;  // announced prefixes
  std::uint64_t withdrawals = 0;    // withdrawn prefixes
  netbase::TimePoint last_seen = 0; // stream time of the last update
  std::uint64_t session_resets = 0; // Established -> anything else
  std::uint64_t stuck = 0;          // batch-equivalent zombie routes
  std::uint64_t ann_seen = 0;       // closed cycles with the announcement seen
  std::uint64_t wd_seen = 0;        // closed cycles with the withdrawal seen
  std::uint64_t miss_streak = 0;    // consecutive closed cycles missed
  /// Dense per-accumulator id (creation order; cells are never erased)
  /// indexing the OpenCycle visibility bitmaps. Internal bookkeeping —
  /// not merged, not serialized.
  std::uint32_t index = 0;
};

/// Immutable per-shard publication; the peer-table side of
/// ShardSnapshot. `epoch` increments per publish so the service can
/// fingerprint "did any shard's peer data change".
struct PeerQShardSnapshot {
  std::uint64_t epoch = 0;
  netbase::TimePoint clock = 0;
  std::uint64_t cycles_closed = 0;  // non-superseded cycles fully closed
  std::map<zombie::PeerKey, PeerCell> peers;
};

/// The shard-worker accumulator. Single-threaded by construction
/// (lives on the worker stack, like the detector).
class PeerQAccumulator {
 public:
  void on_record(const mrt::MrtRecord& record);
  /// Called where the worker releases the event to its detector;
  /// superseded events are skipped (the batch collision rule).
  void on_expect(const beacon::BeaconEvent& event, netbase::Duration threshold);
  /// One batch-equivalent emerge alert (resurrections excluded by the
  /// caller).
  void on_stuck(const zombie::ZombieAlert& alert);
  /// Closes every open cycle whose deadline passed; updates per-peer
  /// seen/missed counts and miss streaks. Cheap when nothing is due.
  void advance(netbase::TimePoint now);

  /// True when classifier-relevant state changed since the last
  /// snapshot (new peer, stuck route, cycle closed, session reset) —
  /// the worker's cue to republish without waiting for the interval.
  bool publish_due() const { return publish_due_; }

  std::uint64_t cycles_closed() const { return cycles_closed_; }
  std::size_t peer_count() const { return cells_.size(); }

  /// Immutable copy for readers; clears publish_due.
  std::shared_ptr<const PeerQShardSnapshot> snapshot(netbase::TimePoint clock,
                                                     std::uint64_t epoch);

 private:
  struct OpenCycle {
    netbase::Prefix prefix;
    netbase::TimePoint withdraw_time = 0;
    netbase::TimePoint deadline = 0;
    /// Peer-visibility bitmaps indexed by PeerCell::index. Recording
    /// an announcement is one idempotent bit-set (duplicates are
    /// free), and closing a cycle probes two bits per resident cell —
    /// the per-peer tree sets this replaces dominated the
    /// accumulator's cost with one node allocation per (cycle, peer).
    std::vector<std::uint64_t> ann_bits;
    std::vector<std::uint64_t> wd_bits;
  };

  PeerCell& cell(const zombie::PeerKey& peer);
  void close_cycle(const OpenCycle& cycle);

  std::map<zombie::PeerKey, PeerCell> cells_;
  std::map<std::uint32_t, OpenCycle> open_;
  /// Open cycles per prefix, scanned linearly: only a handful of
  /// beacon windows are ever open at once per shard, and the hot case
  /// — an announced prefix that is *not* a beacon prefix — must
  /// reject in a few inline compares rather than a tree walk, because
  /// this runs once per announced prefix of every update record.
  /// std::map nodes are stable, so the OpenCycle pointers stay valid
  /// until advance() erases the cycle (which also unlinks them here).
  std::vector<std::pair<netbase::Prefix, std::vector<OpenCycle*>>> by_prefix_;
  /// 256-bit membership filter over the first address byte of every
  /// open beacon prefix. Rebuilt on the rare open/close transitions so
  /// the overwhelmingly common announced prefix that shares no first
  /// byte with any open window rejects in a bit test, before even the
  /// by_prefix_ scan.
  std::array<std::uint64_t, 4> first_byte_filter_{};
  void rebuild_filter();
  /// One-entry MRU for cells_: MRT archives batch a session's updates,
  /// so consecutive records usually hit the same peer. std::map node
  /// references are stable, so the pointer stays valid until clear.
  zombie::PeerKey last_peer_;
  PeerCell* last_cell_ = nullptr;
  /// (deadline, cycle id) min-heap driving advance().
  std::priority_queue<std::pair<netbase::TimePoint, std::uint32_t>,
                      std::vector<std::pair<netbase::TimePoint, std::uint32_t>>,
                      std::greater<>>
      due_;
  std::uint32_t next_cycle_ = 0;
  std::uint64_t cycles_closed_ = 0;
  mrt::PeerIndexTable last_index_;
  bool publish_due_ = false;
};

/// One row of the merged service-wide table.
struct PeerRow {
  zombie::PeerKey peer;
  std::uint64_t updates = 0;
  std::uint64_t announcements = 0;
  std::uint64_t withdrawals = 0;
  netbase::TimePoint last_seen = 0;
  std::uint64_t session_resets = 0;
  std::uint64_t stuck = 0;
  std::uint64_t ann_seen = 0;
  std::uint64_t wd_seen = 0;
  std::uint64_t miss_streak = 0;
  double probability = 0.0;  // stuck / total_cycles
  WilsonInterval wilson;
  bool noisy_raw = false;  // the memoryless NoisyPeerFilter verdict
  bool noisy = false;      // published (dwell-stabilized) verdict
  bool silent = false;     // fed before, nothing within silent_after
};

/// Epoch-versioned merged table, immutable once built.
struct PeerTable {
  std::uint64_t fingerprint = 0;  // summed shard peerq epochs
  netbase::TimePoint clock = 0;
  std::uint64_t total_cycles = 0;
  double median_probability = 0.0;
  std::size_t noisy_count = 0;
  std::size_t silent_count = 0;
  std::size_t feeding_count = 0;  // updates > 0 and not silent
  std::vector<PeerRow> rows;      // sorted by PeerKey

  const PeerRow* find(const zombie::PeerKey& peer) const;
  std::set<zombie::PeerKey> noisy_set() const;
};

/// Merges shard snapshots and runs the classifier. Owns the published
/// per-peer state (dwell streaks, silence episodes); callers serialize
/// access (LiveService guards it with one mutex).
class PeerTableBuilder {
 public:
  explicit PeerTableBuilder(PeerQConfig config) : config_(std::move(config)) {}

  /// `new_data` gates dwell-streak advancement: pass true only when
  /// the merged fingerprint changed, so polling cannot age the
  /// hysteresis by itself. `converge` (finalize) snaps the published
  /// classification to the raw rule and flushes pending transitions.
  /// Emits kPeerNoisyEnter / kPeerNoisyExit / kPeerSilent journal
  /// events for every published transition.
  std::shared_ptr<const PeerTable> build(
      const std::vector<std::shared_ptr<const PeerQShardSnapshot>>& shards,
      netbase::TimePoint clock, bool new_data, bool converge);

 private:
  struct Published {
    bool noisy = false;
    int streak = 0;         // consecutive raw disagreements
    bool silent_logged = false;  // one kPeerSilent per episode
  };

  PeerQConfig config_;
  std::map<zombie::PeerKey, Published> state_;
};

/// JSON for GET /peers (noisy_only = GET /peers/noisy, sorted by
/// descending stuck probability like NoisyPeerFilter::noisy_peers).
/// `epoch` is the service snapshot epoch the table was merged at.
std::string peer_table_json(const PeerTable& table, std::uint64_t epoch,
                            bool noisy_only);

}  // namespace zombiescope::live

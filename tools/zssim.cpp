// zssim — generates MRT archives from the calibrated scenarios, so the
// zsdetect CLI (and any MRT consumer) has realistic data to chew on.
//
//   zssim ris2018|ris2017oct|ris2017mar|longlived2024 [output-prefix]
//         [--metrics-out FILE] [--trace-out FILE] [--metrics-format prom|json]
//         [--journal-out FILE] [--journal-format ndjson|bin]
//         [--journal-categories LIST] [--http-port N] [--profile-out FILE]
//         [--heap-out FILE] [--causal-sample-rate R]
//
// Writes <prefix>.updates.mrt (and <prefix>.ribs.mrt for
// longlived2024). Defaults the prefix to the scenario name.
// --metrics-out snapshots the telemetry registry after the run;
// --trace-out dumps the per-stage span tree; --journal-out records the
// fault-injection / collector event journal (read it with zsreport;
// the `propagation` category feeds zsroot); --http-port serves
// /metrics, /healthz, /spans, /journal/tail, /causal, /profile and
// /heap live during the simulation; --profile-out samples the whole
// run with zsprof and writes folded stacks (flamegraph-ready) there;
// --heap-out profiles allocations with zsheap and writes the
// zsheap-v1 JSON report (per-span bytes, top sites) there;
// --causal-sample-rate sets the probability that each *announcement*
// wave is causally traced (withdrawals are always traced; default
// 0.01) (see DESIGN.md, "Observability").

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "mrt/codec.hpp"
#include "obs/build_info.hpp"
#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/heap.hpp"
#include "obs/http.hpp"
#include "obs/journal.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "scenarios/longlived2024.hpp"
#include "scenarios/ris_replication.hpp"

using namespace zombiescope;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s ris2018|ris2017oct|ris2017mar|longlived2024 [output-prefix]\n"
               "          [--metrics-out FILE] [--trace-out FILE]\n"
               "          [--metrics-format prom|json] [--journal-out FILE]\n"
               "          [--journal-format ndjson|bin] [--journal-categories LIST]\n"
               "          [--http-port N] [--tsdb-cadence-ms N (0 disables)]\n"
               "          [--profile-out FILE] [--heap-out FILE]\n"
               "          [--causal-sample-rate R]\n"
               "          [--version]\n",
               argv0);
  std::exit(2);
}

int run_scenario(const std::string& which, const std::string& prefix) {
  if (which == "longlived2024") {
    scenarios::LongLived2024Spec spec;
    std::fprintf(stderr, "simulating the 2024 beacon experiment (~1 year of RIB dumps)...\n");
    const auto out = scenarios::run_longlived2024(spec);
    {
      obs::ScopedSpan write_span("zssim.write_mrt");
      mrt::write_file(prefix + ".updates.mrt", out.updates);
      mrt::write_file(prefix + ".ribs.mrt", out.rib_dumps);
    }
    std::printf("wrote %s.updates.mrt (%zu records) and %s.ribs.mrt (%zu records)\n",
                prefix.c_str(), out.updates.size(), prefix.c_str(), out.rib_dumps.size());
    std::printf("detect with:\n  zsdetect --updates %s.updates.mrt --ribs %s.ribs.mrt \\\n"
                "           --schedule fifteen --start 2024-06-10 --end 2024-06-23 "
                "--filter-noisy\n",
                prefix.c_str(), prefix.c_str());
    return 0;
  }

  scenarios::RisPeriodSpec spec;
  if (which == "ris2018") spec = scenarios::period_2018jul();
  else if (which == "ris2017oct") spec = scenarios::period_2017oct();
  else if (which == "ris2017mar") spec = scenarios::period_2017mar();
  else {
    std::fprintf(stderr, "error: unknown scenario '%s'\n", which.c_str());
    return 2;
  }
  std::fprintf(stderr, "simulating RIS period %s...\n", spec.label.c_str());
  const auto out = scenarios::run_ris_period(spec);
  {
    obs::ScopedSpan write_span("zssim.write_mrt");
    mrt::write_file(prefix + ".updates.mrt", out.updates);
  }
  std::printf("wrote %s.updates.mrt (%zu records)\n", prefix.c_str(), out.updates.size());
  std::printf("detect with:\n  zsdetect --updates %s.updates.mrt --schedule ris \\\n"
              "           --start %s --end %s --filter-noisy --root-cause\n",
              prefix.c_str(), netbase::format_date(spec.start).c_str(),
              netbase::format_date(spec.end).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::puts(obs::identity_line("zssim").c_str());
      return 0;
    }
  }
  std::vector<std::string> positional;
  std::string metrics_out;
  std::string trace_out;
  obs::Format metrics_format = obs::Format::kJson;
  std::string journal_out;
  obs::JournalFormat journal_format = obs::JournalFormat::kNdjson;
  std::uint32_t journal_categories = obs::kCatAll;
  int http_port = -1;  // -1 = no HTTP server
  long tsdb_cadence_ms = 1000;  // 0 disables the /tsdb store
  std::string profile_out;
  std::string heap_out;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out") metrics_out = need_value(i);
    else if (arg == "--trace-out") trace_out = need_value(i);
    else if (arg == "--metrics-format") {
      const auto parsed = obs::parse_format(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      metrics_format = *parsed;
    } else if (arg == "--journal-out") journal_out = need_value(i);
    else if (arg == "--journal-format") {
      const auto parsed = obs::parse_journal_format(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      journal_format = *parsed;
    } else if (arg == "--journal-categories") {
      const auto parsed = obs::parse_categories(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      journal_categories = *parsed;
    } else if (arg == "--http-port") {
      http_port = std::stoi(need_value(i));
    } else if (arg == "--tsdb-cadence-ms") {
      tsdb_cadence_ms = std::stol(need_value(i));
    } else if (arg == "--profile-out") {
      profile_out = need_value(i);
    } else if (arg == "--heap-out") {
      heap_out = need_value(i);
    } else if (arg == "--causal-sample-rate") {
      try {
        obs::causal_set_announce_sample_rate(std::stod(need_value(i)));
      } catch (const std::exception&) {
        usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty() || positional.size() > 2) usage(argv[0]);
  const std::string which = positional[0];
  const std::string prefix = positional.size() > 1 ? positional[1] : which;

  // Covers the whole run (simulation + MRT writes); the folded stacks
  // land in the file when main returns.
  obs::ScopedProfileSession profile(profile_out);
  obs::ScopedHeapSession heap(heap_out);

  obs::Journal& journal = obs::Journal::global();
  if (!journal_out.empty()) {
    try {
      journal.attach_writer(
          std::make_unique<obs::JournalWriter>(journal_out, journal_format));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    journal.set_enabled_categories(journal_categories);
    journal.set_autopump(true);
  }
  // Retained metrics history for the duration of the run; only worth
  // sampling when the HTTP port (the only way to query it) is up.
  obs::TsdbConfig tsdb_config;
  tsdb_config.cadence_ms = tsdb_cadence_ms > 0 ? tsdb_cadence_ms : 1000;
  obs::Tsdb tsdb(tsdb_config);
  obs::HttpServer http;
  if (http_port >= 0) {
    const bool tsdb_on = obs::kTsdbCompiledIn && tsdb_cadence_ms > 0;
    if (tsdb_on) tsdb.attach_http(http);
    if (!http.start(static_cast<std::uint16_t>(http_port))) {
      std::fprintf(stderr, "error: cannot bind HTTP port %d\n", http_port);
      return 1;
    }
    if (tsdb_on) tsdb.start();
    std::fprintf(stderr, "serving http://127.0.0.1:%u/metrics\n", http.port());
  }

  int rc = 0;
  {
    // Root of the span tree; every scenario stage nests under it.
    obs::ScopedSpan root("zssim.run");
    rc = run_scenario(which, prefix);
  }

  try {
    if (!metrics_out.empty()) obs::write_metrics_file(metrics_out, metrics_format);
    if (!trace_out.empty()) obs::write_trace_file(trace_out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!journal_out.empty()) {
    journal.close_writer();
    std::fprintf(stderr, "journal: %llu event(s) written to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(journal.emitted()), journal_out.c_str(),
                 static_cast<unsigned long long>(journal.dropped()));
  }
  http.stop();
  tsdb.stop();
  return rc;
}

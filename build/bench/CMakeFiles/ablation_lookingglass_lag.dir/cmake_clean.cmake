file(REMOVE_RECURSE
  "CMakeFiles/ablation_lookingglass_lag.dir/ablation_lookingglass_lag.cpp.o"
  "CMakeFiles/ablation_lookingglass_lag.dir/ablation_lookingglass_lag.cpp.o.d"
  "ablation_lookingglass_lag"
  "ablation_lookingglass_lag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lookingglass_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for zs_mrt.
# This may be replaced when dependencies are built.

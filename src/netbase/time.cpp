#include "netbase/time.hpp"

#include <cstdio>
#include <stdexcept>

namespace zombiescope::netbase {

namespace {

constexpr bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

constexpr int days_in_month(int year, int month) {
  constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[month - 1];
}

// Days from 1970-01-01 to year-month-day, via the classic civil-days
// algorithm (Howard Hinnant's days_from_civil).
constexpr std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Inverse of days_from_civil (Howard Hinnant's civil_from_days).
constexpr void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

TimePoint from_civil(const CivilTime& c) {
  if (c.month < 1 || c.month > 12) throw std::invalid_argument("month out of range");
  if (c.day < 1 || c.day > days_in_month(c.year, c.month))
    throw std::invalid_argument("day out of range");
  if (c.hour < 0 || c.hour > 23 || c.minute < 0 || c.minute > 59 || c.second < 0 ||
      c.second > 59)
    throw std::invalid_argument("time of day out of range");
  return days_from_civil(c.year, c.month, c.day) * kDay + c.hour * kHour + c.minute * kMinute +
         c.second;
}

TimePoint utc(int year, int month, int day, int hour, int minute, int second) {
  return from_civil({year, month, day, hour, minute, second});
}

CivilTime to_civil(TimePoint t) {
  std::int64_t days = t / kDay;
  std::int64_t rem = t % kDay;
  if (rem < 0) {
    rem += kDay;
    --days;
  }
  CivilTime c;
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / kHour);
  c.minute = static_cast<int>((rem % kHour) / kMinute);
  c.second = static_cast<int>(rem % kMinute);
  return c;
}

TimePoint start_of_month(TimePoint t) {
  CivilTime c = to_civil(t);
  return from_civil({c.year, c.month, 1, 0, 0, 0});
}

TimePoint start_of_day(TimePoint t) {
  CivilTime c = to_civil(t);
  return from_civil({c.year, c.month, c.day, 0, 0, 0});
}

std::string format_utc(TimePoint t) {
  CivilTime c = to_civil(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month, c.day,
                c.hour, c.minute, c.second);
  return buf;
}

std::string format_date(TimePoint t) {
  CivilTime c = to_civil(t);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string format_duration(Duration d) {
  char buf[32];
  if (d < 0) return "-" + format_duration(-d);
  if (d < kMinute) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(d));
  } else if (d < 3 * kHour) {
    std::snprintf(buf, sizeof(buf), "%lldm", static_cast<long long>(d / kMinute));
  } else if (d < 2 * kDay) {
    const double hours = static_cast<double>(d) / kHour;
    std::snprintf(buf, sizeof(buf), "%.1fh", hours);
  } else {
    const double days = static_cast<double>(d) / kDay;
    std::snprintf(buf, sizeof(buf), "%.1fd", days);
  }
  return buf;
}

}  // namespace zombiescope::netbase

file(REMOVE_RECURSE
  "CMakeFiles/table4_noisy_peer_ris.dir/table4_noisy_peer_ris.cpp.o"
  "CMakeFiles/table4_noisy_peer_ris.dir/table4_noisy_peer_ris.cpp.o.d"
  "table4_noisy_peer_ris"
  "table4_noisy_peer_ris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_noisy_peer_ris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig1_partial_outage.dir/fig1_partial_outage.cpp.o"
  "CMakeFiles/fig1_partial_outage.dir/fig1_partial_outage.cpp.o.d"
  "fig1_partial_outage"
  "fig1_partial_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_partial_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

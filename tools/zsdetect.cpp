// zsdetect — the command-line BGP zombie detector.
//
// Consumes MRT archives (updates, and optionally TABLE_DUMP_V2 RIB
// dumps) plus a beacon schedule description, and reports zombie
// outbreaks: the revised methodology of the paper as one tool.
//
//   zsdetect --updates updates.mrt --schedule ris
//            --start 2018-07-19 --end 2018-09-01 [options]
//
// Schedules:
//   ris        classic RIPE RIS beacons (4h cycle, 2h up, Aggregator clock)
//   daily      the paper's approach 1 (96 IPv6 /48s per day, 24h recycle)
//   fifteen    the paper's approach 2 (15-day recycle, collision rule applied)
//
// Options:
//   --ribs FILE          RIB-dump archive: adds lifespan & resurrection report
//   --threshold MIN      stuck threshold in minutes (default 90)
//   --filter-noisy       detect noisy peers statistically and exclude them
//   --no-dedup           report with double-counting (baseline methodology)
//   --root-cause         run palm-tree inference per outbreak
//   --max-outbreaks N    print at most N outbreaks (default 20)
//   --metrics-out FILE   write a telemetry snapshot after the run
//   --metrics-format F   snapshot format: prom | json (default json)
//   --trace-out FILE     write the per-stage span tree as JSON
//   --journal-out FILE   record the zombie-lifecycle event journal
//                        (analyze it with zsreport)
//   --journal-format F   journal format: ndjson | bin (default ndjson)
//   --journal-categories C  comma list: run,state,detector,noise,
//                        lifespan,collector,fault,propagation,all
//                        (default all)
//   --http-port N        serve /metrics /healthz /spans /journal/tail
//                        /causal /profile /heap on port N while
//                        running (0 = ephemeral)
//   --profile-out FILE   sample the whole run with zsprof and write
//                        folded stacks (flamegraph-ready) to FILE
//   --heap-out FILE      profile allocations with zsheap and write the
//                        zsheap-v1 JSON report (per-span bytes, top
//                        sampled sites) to FILE

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "beacon/schedule.hpp"
#include "obs/build_info.hpp"
#include "mrt/codec.hpp"
#include "obs/export.hpp"
#include "obs/heap.hpp"
#include "obs/http.hpp"
#include "obs/journal.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/longlived.hpp"
#include "zombie/noisy.hpp"
#include "zombie/rootcause.hpp"
#include "zombie/state.hpp"

using namespace zombiescope;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --updates FILE --schedule ris|daily|fifteen --start YYYY-MM-DD\n"
               "          --end YYYY-MM-DD [--ribs FILE] [--threshold MINUTES]\n"
               "          [--filter-noisy] [--no-dedup] [--root-cause] [--max-outbreaks N]\n"
               "          [--metrics-out FILE] [--metrics-format prom|json]\n"
               "          [--trace-out FILE] [--journal-out FILE]\n"
               "          [--journal-format ndjson|bin] [--journal-categories LIST]\n"
               "          [--http-port N] [--tsdb-cadence-ms N (0 disables)]\n"
               "          [--profile-out FILE] [--heap-out FILE]\n"
               "          [--version]\n",
               argv0);
  std::exit(2);
}

netbase::TimePoint parse_date(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    std::fprintf(stderr, "error: bad date '%s' (want YYYY-MM-DD)\n", text.c_str());
    std::exit(2);
  }
  return netbase::utc(y, m, d);
}

struct Options {
  std::string updates_path;
  std::string ribs_path;
  std::string schedule = "ris";
  netbase::TimePoint start = 0;
  netbase::TimePoint end = 0;
  netbase::Duration threshold = 90 * netbase::kMinute;
  bool filter_noisy = false;
  bool dedup = true;
  bool root_cause = false;
  int max_outbreaks = 20;
  std::string metrics_out;
  std::string trace_out;
  obs::Format metrics_format = obs::Format::kJson;
  std::string journal_out;
  obs::JournalFormat journal_format = obs::JournalFormat::kNdjson;
  std::uint32_t journal_categories = obs::kCatAll;
  int http_port = -1;           // -1 = no HTTP server
  long tsdb_cadence_ms = 1000;  // 0 disables the /tsdb store
  std::string profile_out;
  std::string heap_out;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--updates") opt.updates_path = need_value(i);
    else if (arg == "--ribs") opt.ribs_path = need_value(i);
    else if (arg == "--schedule") opt.schedule = need_value(i);
    else if (arg == "--start") opt.start = parse_date(need_value(i));
    else if (arg == "--end") opt.end = parse_date(need_value(i));
    else if (arg == "--threshold")
      opt.threshold = std::stol(need_value(i)) * netbase::kMinute;
    else if (arg == "--filter-noisy") opt.filter_noisy = true;
    else if (arg == "--no-dedup") opt.dedup = false;
    else if (arg == "--root-cause") opt.root_cause = true;
    else if (arg == "--max-outbreaks") opt.max_outbreaks = std::stoi(need_value(i));
    else if (arg == "--metrics-out") opt.metrics_out = need_value(i);
    else if (arg == "--trace-out") opt.trace_out = need_value(i);
    else if (arg == "--metrics-format") {
      const auto parsed = obs::parse_format(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      opt.metrics_format = *parsed;
    } else if (arg == "--journal-out") opt.journal_out = need_value(i);
    else if (arg == "--journal-format") {
      const auto parsed = obs::parse_journal_format(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      opt.journal_format = *parsed;
    } else if (arg == "--journal-categories") {
      const auto parsed = obs::parse_categories(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      opt.journal_categories = *parsed;
    } else if (arg == "--http-port") opt.http_port = std::stoi(need_value(i));
    else if (arg == "--tsdb-cadence-ms") opt.tsdb_cadence_ms = std::stol(need_value(i));
    else if (arg == "--profile-out") opt.profile_out = need_value(i);
    else if (arg == "--heap-out") opt.heap_out = need_value(i);
    else usage(argv[0]);
  }
  if (opt.updates_path.empty() || opt.start == 0 || opt.end == 0 || opt.end <= opt.start)
    usage(argv[0]);
  return opt;
}

std::vector<beacon::BeaconEvent> make_events(const Options& opt) {
  if (opt.schedule == "ris")
    return beacon::RisBeaconSchedule::classic().events(opt.start, opt.end);
  if (opt.schedule == "daily")
    return beacon::LongLivedBeaconSchedule::paper_deployment(
               beacon::LongLivedBeaconSchedule::Approach::kDaily)
        .events(opt.start, opt.end);
  if (opt.schedule == "fifteen")
    return beacon::LongLivedBeaconSchedule::paper_deployment(
               beacon::LongLivedBeaconSchedule::Approach::kFifteenDay)
        .events(opt.start, opt.end);
  std::fprintf(stderr, "error: unknown schedule '%s'\n", opt.schedule.c_str());
  std::exit(2);
}

void print_outbreak(const zombie::ZombieOutbreak& outbreak, bool root_cause) {
  std::printf("%s  %s  %d peer router(s) in %d AS(es)\n",
              netbase::format_utc(outbreak.interval_start).c_str(),
              outbreak.prefix.to_string().c_str(), outbreak.peer_router_count(),
              outbreak.peer_as_count());
  for (const auto& route : outbreak.routes)
    std::printf("    %-42s [%s]\n", zombie::to_string(route.peer).c_str(),
                route.path.to_string().c_str());
  if (root_cause) {
    const auto cause = zombie::infer_root_cause(outbreak);
    std::printf("    suspect: AS%u (chain '%s')%s%s\n", cause.suspect.value_or(0),
                cause.common_subpath().c_str(), cause.ambiguous ? " [ambiguous]" : "",
                cause.single_route ? " [single route]" : "");
  }
}

int run(const Options& opt) {
  std::vector<mrt::MrtRecord> updates;
  try {
    obs::ScopedSpan load_span("zsdetect.load");
    updates = mrt::read_file(opt.updates_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto events = make_events(opt);
  std::fprintf(stderr, "loaded %zu records, %zu beacon events [%s .. %s]\n", updates.size(),
               events.size(), netbase::format_date(opt.start).c_str(),
               netbase::format_date(opt.end).c_str());

  // Pass 1: detect with every peer, to compute noisy-peer statistics.
  // The statistics run on *deduplicated* routes: a peer sitting behind
  // a long in-network stall accumulates duplicates that would drown
  // the per-session signal (the paper computes its 1.58 % background
  // after the Aggregator filter too).
  std::set<zombie::PeerKey> excluded;
  int studied_announcements = 0;
  obs::Journal& journal = obs::Journal::global();
  const std::uint32_t journal_mask = journal.enabled_categories();
  if (opt.filter_noisy) {
    // The statistics pass re-runs a detector whose declarations are
    // NOT what this tool reports; mask the detector category so the
    // journal carries exactly the reported zombie set (zsreport
    // reconstructs from kZombieDeclared events alone).
    journal.set_enabled_categories(journal_mask & ~obs::kCatDetector);
    zombie::StateTracker tracker;
    for (const auto& record : updates) tracker.apply(record);
    std::vector<zombie::ZombieRoute> routes;
    if (opt.schedule == "ris") {
      zombie::IntervalDetectorConfig pass_config;
      pass_config.threshold = opt.threshold;
      zombie::IntervalZombieDetector pass_detector(pass_config);
      const auto pass = pass_detector.detect(updates, events);
      for (const auto& route : pass.routes)
        if (!route.duplicate) routes.push_back(route);
      studied_announcements = static_cast<int>(events.size());
    } else {
      zombie::LongLivedZombieDetector pass_detector{zombie::LongLivedConfig{}};
      const auto pass = pass_detector.detect(updates, events, opt.threshold);
      for (const auto& outbreak : pass.outbreaks)
        for (const auto& route : outbreak.routes) routes.push_back(route);
      studied_announcements = pass.total_announcements;
    }
    zombie::NoisyPeerFilter filter;
    excluded = filter.noisy_peer_keys(routes, tracker.peers(), studied_announcements);
    journal.set_enabled_categories(journal_mask);
    for (const auto& peer : excluded) {
      std::fprintf(stderr, "noisy peer excluded: %s\n", zombie::to_string(peer).c_str());
      if (journal.enabled(obs::kCatNoise)) {
        obs::JournalEvent ev;
        ev.type = obs::JournalEventType::kNoisyPeerExcluded;
        ev.time = opt.start;
        ev.has_peer = true;
        ev.peer_asn = peer.asn;
        ev.peer_address = peer.address;
        journal.emit<obs::kCatNoise>(ev);
      }
    }
  }

  zombie::LongLivedConfig config;
  config.excluded_peers = excluded;
  zombie::LongLivedZombieDetector detector{config};
  // Under the ris schedule the interval methodology below is what gets
  // reported; mask this long-lived pass out of the journal there too.
  if (opt.schedule == "ris")
    journal.set_enabled_categories(journal_mask & ~obs::kCatDetector);
  auto result = detector.detect(updates, events, opt.threshold);
  journal.set_enabled_categories(journal_mask);

  if (journal.enabled(obs::kCatRun)) {
    obs::JournalEvent meta;
    meta.type = obs::JournalEventType::kRunMeta;
    meta.time = opt.start;
    meta.a = opt.schedule == "ris" ? static_cast<std::int64_t>(events.size())
                                   : result.total_announcements;
    meta.b = opt.threshold;
    meta.c = opt.end;
    journal.emit<obs::kCatRun>(meta);
  }

  // Aggregator-clock dedup (meaningful for RIS-style beacons): run the
  // interval methodology when requested.
  if (opt.schedule == "ris") {
    zombie::IntervalDetectorConfig interval_config;
    interval_config.threshold = opt.threshold;
    interval_config.excluded_peers = excluded;
    zombie::IntervalZombieDetector interval_detector(interval_config);
    const auto interval_result = interval_detector.detect(updates, events);
    const auto& outbreaks = opt.dedup ? interval_result.outbreaks_deduplicated
                                      : interval_result.outbreaks_with_duplicates;
    std::printf("== %zu zombie outbreak(s) (%s double-counting), %d visible <beacon,interval>\n",
                outbreaks.size(), opt.dedup ? "without" : "with",
                interval_result.visible_prefixes);
    int shown = 0;
    for (const auto& outbreak : outbreaks) {
      if (++shown > opt.max_outbreaks) {
        std::printf("... (%zu more)\n", outbreaks.size() - static_cast<std::size_t>(shown - 1));
        break;
      }
      print_outbreak(outbreak, opt.root_cause);
    }
  } else {
    std::printf("== %zu zombie outbreak(s) out of %d studied announcements (%.2f%%)\n",
                result.outbreaks.size(), result.total_announcements,
                100.0 * result.outbreak_fraction());
    int shown = 0;
    for (const auto& outbreak : result.outbreaks) {
      if (++shown > opt.max_outbreaks) {
        std::printf("... (%zu more)\n",
                    result.outbreaks.size() - static_cast<std::size_t>(shown - 1));
        break;
      }
      print_outbreak(outbreak, opt.root_cause);
    }
  }

  // Optional lifespan report from RIB dumps.
  if (!opt.ribs_path.empty()) {
    std::vector<mrt::MrtRecord> ribs;
    try {
      obs::ScopedSpan load_span("zsdetect.load_ribs");
      ribs = mrt::read_file(opt.ribs_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    zombie::LifespanAnalyzer analyzer{config};
    const auto lifespans = analyzer.analyze(ribs, events, 8 * netbase::kHour);
    std::printf("\n== lifespans from %zu RIB records (>= 1 day):\n", ribs.size());
    for (const auto& lifespan : lifespans) {
      if (lifespan.duration() < netbase::kDay) continue;
      std::printf("%s stuck %s (withdrawn %s, last seen %s), %zu resurrection(s)\n",
                  lifespan.prefix.to_string().c_str(),
                  netbase::format_duration(lifespan.duration()).c_str(),
                  netbase::format_date(lifespan.withdraw_time).c_str(),
                  netbase::format_date(lifespan.last_seen).c_str(),
                  lifespan.resurrections.size());
      for (const auto& res : lifespan.resurrections)
        std::printf("    resurrected %s at %s (invisible since %s)\n",
                    netbase::format_date(res.reappeared_at).c_str(),
                    zombie::to_string(res.peer).c_str(),
                    netbase::format_date(res.vanished_at).c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::puts(obs::identity_line("zsdetect").c_str());
      return 0;
    }
  }
  const Options opt = parse_options(argc, argv);

  // Covers the whole run (MRT load + detector passes + reporting); the
  // folded stacks land in the file when main returns.
  obs::ScopedProfileSession profile(opt.profile_out);
  obs::ScopedHeapSession heap(opt.heap_out);

  obs::Journal& journal = obs::Journal::global();
  if (!opt.journal_out.empty()) {
    try {
      journal.attach_writer(
          std::make_unique<obs::JournalWriter>(opt.journal_out, opt.journal_format));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    journal.set_enabled_categories(opt.journal_categories);
    journal.set_autopump(true);
  }
  // Retained metrics history for the duration of the run; only worth
  // sampling when the HTTP port (the only way to query it) is up.
  obs::TsdbConfig tsdb_config;
  tsdb_config.cadence_ms = opt.tsdb_cadence_ms > 0 ? opt.tsdb_cadence_ms : 1000;
  obs::Tsdb tsdb(tsdb_config);
  obs::HttpServer http;
  if (opt.http_port >= 0) {
    const bool tsdb_on = obs::kTsdbCompiledIn && opt.tsdb_cadence_ms > 0;
    if (tsdb_on) tsdb.attach_http(http);
    if (!http.start(static_cast<std::uint16_t>(opt.http_port))) {
      std::fprintf(stderr, "error: cannot bind HTTP port %d\n", opt.http_port);
      return 1;
    }
    if (tsdb_on) tsdb.start();
    std::fprintf(stderr, "serving http://127.0.0.1:%u/metrics\n", http.port());
  }

  int rc = 0;
  {
    // Root of the span tree; load and detector-pass spans nest under it.
    obs::ScopedSpan root("zsdetect.run");
    rc = run(opt);
  }

  try {
    if (!opt.metrics_out.empty()) obs::write_metrics_file(opt.metrics_out, opt.metrics_format);
    if (!opt.trace_out.empty()) obs::write_trace_file(opt.trace_out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!opt.journal_out.empty()) {
    journal.close_writer();
    std::fprintf(stderr, "journal: %llu event(s) written to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(journal.emitted()),
                 opt.journal_out.c_str(),
                 static_cast<unsigned long long>(journal.dropped()));
  }
  http.stop();
  tsdb.stop();
  return rc;
}

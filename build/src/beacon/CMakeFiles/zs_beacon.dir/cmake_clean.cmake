file(REMOVE_RECURSE
  "CMakeFiles/zs_beacon.dir/clock.cpp.o"
  "CMakeFiles/zs_beacon.dir/clock.cpp.o.d"
  "CMakeFiles/zs_beacon.dir/driver.cpp.o"
  "CMakeFiles/zs_beacon.dir/driver.cpp.o.d"
  "CMakeFiles/zs_beacon.dir/schedule.cpp.o"
  "CMakeFiles/zs_beacon.dir/schedule.cpp.o.d"
  "libzs_beacon.a"
  "libzs_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

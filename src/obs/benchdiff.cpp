#include "obs/benchdiff.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace zombiescope::obs {

// --- minimal JSON reader --------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Snapshot strings are ASCII in practice; encode the code
            // point as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) return false;
    const std::string token(text_.substr(start, pos_ - start));
    try {
      out = std::stod(token);
    } catch (...) {
      return false;
    }
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        if (!string(key)) return false;
        if (!consume(':')) return false;
        JsonValue member;
        if (!value(member)) return false;
        out.object.emplace_back(std::move(key), std::move(member));
        if (consume(',')) {
          skip_ws();
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue element;
        if (!value(element)) return false;
        out.array.push_back(std::move(element));
        if (consume(',')) continue;
        return consume(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    out.kind = JsonValue::Kind::kNumber;
    return number(out.number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

// --- snapshot loading -----------------------------------------------

namespace {

std::string member_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v != nullptr && v->kind == JsonValue::Kind::kString) return v->str;
  return "unknown";
}

/// Derives a bench name from a path like ".../BENCH_micro_hotpaths.json".
std::string bench_name_from_path(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  if (base.rfind("BENCH_", 0) == 0) base = base.substr(6);
  const std::size_t dot = base.rfind(".json");
  if (dot != std::string::npos) base = base.substr(0, dot);
  return base.empty() ? "unknown" : base;
}

void flatten_numbers(const JsonValue& obj, const std::string& prefix,
                     std::map<std::string, double>& out) {
  if (obj.kind != JsonValue::Kind::kObject) return;
  for (const auto& [key, v] : obj.object) {
    if (v.kind == JsonValue::Kind::kNumber) out[prefix + key] = v.number;
  }
}

}  // namespace

BenchSnapshot parse_bench_snapshot(std::string_view json, const std::string& label) {
  const std::optional<JsonValue> root = parse_json(json);
  if (!root || root->kind != JsonValue::Kind::kObject)
    throw std::runtime_error(label + ": not a JSON object");
  const JsonValue* schema = root->find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->str != "zsobs-v1")
    throw std::runtime_error(label + ": not a zsobs-v1 snapshot");

  BenchSnapshot snap;
  snap.path = label;

  if (const JsonValue* bench = root->find("bench");
      bench != nullptr && bench->kind == JsonValue::Kind::kString) {
    snap.bench_name = bench->str;
  } else {
    snap.bench_name = bench_name_from_path(label);
  }

  if (const JsonValue* build = root->find("build_info");
      build != nullptr && build->kind == JsonValue::Kind::kObject) {
    snap.build.git_sha = member_string(*build, "git_sha");
    snap.build.compiler = member_string(*build, "compiler");
    snap.build.build_type = member_string(*build, "build_type");
    snap.build.sanitizer = member_string(*build, "sanitizer");
    snap.build.arch = member_string(*build, "arch");
  } else {
    snap.build = BuildInfo{"unknown", "unknown", "unknown", "unknown", "unknown"};
  }

  if (const JsonValue* v = root->find("wall_time_s");
      v != nullptr && v->kind == JsonValue::Kind::kNumber)
    snap.metrics["wall_time_s"] = v->number;
  if (const JsonValue* v = root->find("peak_rss_bytes");
      v != nullptr && v->kind == JsonValue::Kind::kNumber)
    snap.metrics["peak_rss_bytes"] = v->number;

  if (const JsonValue* counters = root->find("counters"))
    flatten_numbers(*counters, "counter:", snap.metrics);
  if (const JsonValue* gauges = root->find("gauges"))
    flatten_numbers(*gauges, "gauge:", snap.metrics);
  if (const JsonValue* hists = root->find("histograms");
      hists != nullptr && hists->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, h] : hists->object) {
      if (const JsonValue* sum = h.find("sum");
          sum != nullptr && sum->kind == JsonValue::Kind::kNumber)
        snap.metrics["hist_sum:" + name] = sum->number;
      if (const JsonValue* count = h.find("count");
          count != nullptr && count->kind == JsonValue::Kind::kNumber)
        snap.metrics["hist_count:" + name] = count->number;
    }
  }
  if (const JsonValue* profile = root->find("profile")) {
    if (const JsonValue* phases = profile->find("phases");
        phases != nullptr && phases->kind == JsonValue::Kind::kObject) {
      for (const auto& [name, p] : phases->object) {
        if (const JsonValue* share = p.find("share");
            share != nullptr && share->kind == JsonValue::Kind::kNumber)
          snap.metrics["phase_share:" + name] = share->number;
      }
    }
  }
  if (const JsonValue* latency = root->find("latency");
      latency != nullptr && latency->kind == JsonValue::Kind::kObject) {
    // The zslat section: each histogram's summary members become
    // latency:<name>:<member> metrics (latency:live.e2e:p99_ns, ...).
    // Only the p99s gate (under --gate-latency); the rest ride along
    // as context for the report.
    for (const auto& [name, h] : latency->object) {
      for (const char* member : {"p50_ns", "p95_ns", "p99_ns", "mean_ns",
                                 "count"}) {
        if (const JsonValue* v = h.find(member);
            v != nullptr && v->kind == JsonValue::Kind::kNumber)
          snap.metrics["latency:" + name + ":" + member] = v->number;
      }
    }
  }
  if (const JsonValue* heap = root->find("heap")) {
    // Top-level numbers of the zsheap-v1 section (total_bytes, allocs,
    // frees, peak_live_bytes, ...) become heap:* metrics; the per-span
    // attribution becomes heap_span_bytes:<name> so a diff can say
    // which phase grew.
    flatten_numbers(*heap, "heap:", snap.metrics);
    if (const JsonValue* spans = heap->find("spans");
        spans != nullptr && spans->kind == JsonValue::Kind::kObject) {
      for (const auto& [name, s] : spans->object) {
        if (const JsonValue* bytes = s.find("bytes");
            bytes != nullptr && bytes->kind == JsonValue::Kind::kNumber)
          snap.metrics["heap_span_bytes:" + name] = bytes->number;
      }
    }
  }
  return snap;
}

BenchSnapshot load_bench_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_bench_snapshot(buf.str(), path);
}

// --- statistics -----------------------------------------------------

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<double> iqr_reject(std::vector<double> values) {
  if (values.size() < 4) return values;
  std::sort(values.begin(), values.end());
  const double q1 = sorted_quantile(values, 0.25);
  const double q3 = sorted_quantile(values, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - 1.5 * iqr;
  const double hi = q3 + 1.5 * iqr;
  std::vector<double> kept;
  kept.reserve(values.size());
  for (double v : values)
    if (v >= lo && v <= hi) kept.push_back(v);
  // Fences at least keep the quartile range itself, so kept is never
  // empty; guard anyway for float oddities (NaN compares false).
  return kept.empty() ? values : kept;
}

namespace {

struct GroupStats {
  double representative = 0.0;  // min of inliers
  double spread_pct = 0.0;      // IQR relative to the representative
  bool ok = false;
};

GroupStats group_stats(std::vector<double> values) {
  GroupStats s;
  if (values.empty()) return s;
  std::vector<double> kept = iqr_reject(std::move(values));
  std::sort(kept.begin(), kept.end());
  s.representative = kept.front();
  if (kept.size() >= 2) {
    const double iqr =
        sorted_quantile(kept, 0.75) - sorted_quantile(kept, 0.25);
    const double denom = std::abs(s.representative);
    s.spread_pct = denom > 0.0 ? iqr / denom * 100.0 : 0.0;
  }
  s.ok = true;
  return s;
}

/// Time/RSS-class metrics participate in the gate; counts are
/// informational (their drift means behavior changed, not perf).
bool gated_metric(std::string_view name, const DiffConfig& config) {
  if (name == "wall_time_s" || name == "peak_rss_bytes") return true;
  if (name.rfind("hist_sum:", 0) == 0 &&
      (name.ends_with("_seconds") || name.ends_with("_ns")))
    return true;
  if (config.gate_counters &&
      (name.rfind("counter:", 0) == 0 || name.rfind("gauge:", 0) == 0))
    return true;
  // Allocation gating (--gate-alloc): the speed program's "fewer
  // allocations, no time regression" proof. Only the two exhaustive
  // totals gate; the rest of heap:* stays informational.
  if (config.gate_alloc &&
      (name == "heap:total_bytes" || name == "heap:allocs"))
    return true;
  // Delivery-latency gating (--gate-latency): every zslat histogram's
  // p99 gates — a stage or end-to-end p99 regression beyond the
  // threshold fails CI like a wall-time regression. p50/mean/count
  // stay informational (count drift means load changed, not latency).
  // Sub-microsecond p99s are demoted at the call site, where the
  // values are known.
  if (config.gate_latency && name.rfind("latency:", 0) == 0 &&
      name.ends_with(":p99_ns"))
    return true;
  return false;
}

// A latency p99 with both sides under this never gates: tens-of-ns
// stage timings (e.g. live.ingest_enqueue) move double-digit percents
// with clock granularity and core migration alone, and no consumer of
// the pipeline can feel a 100 ns shift. A p99 that *crosses* the floor
// still gates — that is a real order-of-magnitude change.
constexpr double kLatencyGateFloorNs = 1000.0;

std::string format_value(double v) {
  char buf[64];
  if (v == 0.0) return "0";
  const double mag = std::abs(v);
  if (mag >= 1e6 || mag < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  } else if (v == std::floor(v) && mag < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string format_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string describe_incompatibility(const BuildInfo& a, const BuildInfo& b) {
  std::string why;
  auto add = [&why](std::string_view field, const std::string& x,
                    const std::string& y) {
    if (x == y) return;
    if (!why.empty()) why += "; ";
    why += std::string(field) + " '" + x + "' vs '" + y + "'";
  };
  add("compiler", a.compiler, b.compiler);
  add("build_type", a.build_type, b.build_type);
  add("sanitizer", a.sanitizer, b.sanitizer);
  add("arch", a.arch, b.arch);
  return why;
}

BenchDiff diff_one_bench(const std::string& name,
                         const std::vector<const BenchSnapshot*>& base,
                         const std::vector<const BenchSnapshot*>& cand,
                         const DiffConfig& config) {
  BenchDiff diff;
  diff.bench_name = name;
  diff.baseline_runs = base.size();
  diff.candidate_runs = cand.size();

  if (base.empty() || cand.empty()) {
    diff.incompatible = base.empty() ? "bench only present in candidate set"
                                     : "bench only present in baseline set";
    return diff;
  }

  // Build-identity check: every run on each side against the other
  // side's first run (within-side mismatches get caught too since
  // comparability is transitive over these fields).
  const BenchSnapshot* anchor = base.front();
  for (const std::vector<const BenchSnapshot*>* group : {&base, &cand}) {
    for (const BenchSnapshot* s : *group) {
      if (builds_comparable(anchor->build, s->build)) continue;
      diff.incompatible = "incompatible builds: " +
                          describe_incompatibility(anchor->build, s->build) +
                          " (" + anchor->path + " vs " + s->path + ")";
      if (!config.force) {
        diff.gate_tripped = true;
        return diff;
      }
    }
  }

  // Union of metric names present on both sides (a metric absent from
  // either side cannot be compared).
  for (const auto& [metric, unused] : base.front()->metrics) {
    (void)unused;
    std::vector<double> base_vals;
    std::vector<double> cand_vals;
    for (const BenchSnapshot* s : base) {
      const auto it = s->metrics.find(metric);
      if (it != s->metrics.end()) base_vals.push_back(it->second);
    }
    for (const BenchSnapshot* s : cand) {
      const auto it = s->metrics.find(metric);
      if (it != s->metrics.end()) cand_vals.push_back(it->second);
    }
    if (base_vals.empty() || cand_vals.empty()) continue;

    const GroupStats bs = group_stats(std::move(base_vals));
    const GroupStats cs = group_stats(std::move(cand_vals));

    MetricDelta d;
    d.name = metric;
    d.base = bs.representative;
    d.cand = cs.representative;
    d.spread_pct = std::max(bs.spread_pct, cs.spread_pct);
    if (d.base == 0.0 && d.cand == 0.0) {
      d.delta_pct = 0.0;
    } else if (d.base == 0.0) {
      d.delta_pct = std::numeric_limits<double>::infinity();
    } else {
      d.delta_pct = (d.cand - d.base) / std::abs(d.base) * 100.0;
    }
    d.gated = gated_metric(metric, config);
    if (d.gated && metric.rfind("latency:", 0) == 0 &&
        d.base < kLatencyGateFloorNs && d.cand < kLatencyGateFloorNs)
      d.gated = false;
    // Significant: past the noise floor AND past the runs' own spread.
    d.significant = std::abs(d.delta_pct) > config.noise_pct &&
                    std::abs(d.delta_pct) > d.spread_pct;
    d.regression =
        d.gated && d.significant && d.delta_pct > config.threshold_pct;
    if (d.regression) diff.gate_tripped = true;
    diff.deltas.push_back(std::move(d));
  }

  std::stable_sort(diff.deltas.begin(), diff.deltas.end(),
                   [](const MetricDelta& a, const MetricDelta& b) {
                     if (a.regression != b.regression) return a.regression;
                     if (a.significant != b.significant) return a.significant;
                     return std::abs(a.delta_pct) > std::abs(b.delta_pct);
                   });
  return diff;
}

}  // namespace

DiffResult diff_benches(const std::vector<BenchSnapshot>& baseline,
                        const std::vector<BenchSnapshot>& candidate,
                        const DiffConfig& config) {
  std::map<std::string, std::pair<std::vector<const BenchSnapshot*>,
                                  std::vector<const BenchSnapshot*>>>
      by_name;
  for (const BenchSnapshot& s : baseline) by_name[s.bench_name].first.push_back(&s);
  for (const BenchSnapshot& s : candidate) by_name[s.bench_name].second.push_back(&s);

  DiffResult result;
  for (const auto& [name, groups] : by_name) {
    BenchDiff diff = diff_one_bench(name, groups.first, groups.second, config);
    if (diff.gate_tripped) result.gate_tripped = true;
    result.benches.push_back(std::move(diff));
  }
  return result;
}

std::string render_table(const DiffResult& result, const DiffConfig& config) {
  std::string out;
  for (const BenchDiff& bench : result.benches) {
    out += "bench " + bench.bench_name + " (" +
           std::to_string(bench.baseline_runs) + " baseline run" +
           (bench.baseline_runs == 1 ? "" : "s") + " vs " +
           std::to_string(bench.candidate_runs) + " candidate run" +
           (bench.candidate_runs == 1 ? "" : "s") + ")\n";
    if (!bench.incompatible.empty()) {
      if (bench.deltas.empty()) {  // refused (or one-sided): nothing compared
        out += "  SKIPPED: " + bench.incompatible + "\n\n";
        continue;
      }
      out += "  WARNING (forced): " + bench.incompatible + "\n";
    }

    std::vector<std::array<std::string, 5>> rows;
    std::size_t significant = 0;
    for (const MetricDelta& d : bench.deltas) {
      if (!d.significant) continue;
      ++significant;
      rows.push_back({d.name, format_value(d.base), format_value(d.cand),
                      format_pct(d.delta_pct),
                      d.regression    ? "REGRESSION"
                      : !d.gated      ? "info"
                      : d.delta_pct < 0.0 ? "improved"
                                          : "ok"});
    }
    if (rows.empty()) {
      out += "  no significant deltas (noise floor " +
             format_value(config.noise_pct) + "%, " +
             std::to_string(bench.deltas.size()) + " metrics compared)\n\n";
      continue;
    }
    std::array<std::size_t, 5> widths = {6, 8, 9, 5, 6};
    const std::array<std::string, 5> header = {"metric", "baseline", "candidate",
                                               "delta", "status"};
    for (std::size_t i = 0; i < widths.size(); ++i)
      widths[i] = std::max(widths[i], header[i].size());
    for (const auto& row : rows)
      for (std::size_t i = 0; i < widths.size(); ++i)
        widths[i] = std::max(widths[i], row[i].size());
    auto emit_row = [&out, &widths](const std::array<std::string, 5>& row) {
      out += "  ";
      for (std::size_t i = 0; i < row.size(); ++i) {
        out += row[i];
        if (i + 1 < row.size())
          out += std::string(widths[i] - row[i].size() + 2, ' ');
      }
      out += '\n';
    };
    emit_row(header);
    for (const auto& row : rows) emit_row(row);
    out += "  (" + std::to_string(significant) + " significant of " +
           std::to_string(bench.deltas.size()) + " compared; gate threshold " +
           format_value(config.threshold_pct) + "%)\n\n";
  }
  out += result.gate_tripped ? "GATE: REGRESSION DETECTED\n" : "GATE: ok\n";
  return out;
}

std::string render_json(const DiffResult& result) {
  std::string out = "{\n  \"schema\": \"zsbenchdiff-v1\",\n";
  out += "  \"gate_tripped\": ";
  out += result.gate_tripped ? "true" : "false";
  out += ",\n  \"benches\": [";
  for (std::size_t i = 0; i < result.benches.size(); ++i) {
    const BenchDiff& bench = result.benches[i];
    if (i != 0) out += ',';
    out += "\n    {\"bench\": \"" + json_escape(bench.bench_name) + "\"";
    out += ", \"baseline_runs\": " + std::to_string(bench.baseline_runs);
    out += ", \"candidate_runs\": " + std::to_string(bench.candidate_runs);
    out += ", \"gate_tripped\": ";
    out += bench.gate_tripped ? "true" : "false";
    if (!bench.incompatible.empty())
      out += ", \"skipped\": \"" + json_escape(bench.incompatible) + "\"";
    out += ", \"deltas\": [";
    bool first = true;
    for (const MetricDelta& d : bench.deltas) {
      if (!d.significant) continue;
      if (!first) out += ',';
      first = false;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "\n      {\"metric\": \"%s\", \"base\": %.17g, "
                    "\"cand\": %.17g, \"delta_pct\": %.4f, "
                    "\"gated\": %s, \"regression\": %s}",
                    json_escape(d.name).c_str(), d.base, d.cand,
                    std::isfinite(d.delta_pct) ? d.delta_pct : 9999.0,
                    d.gated ? "true" : "false",
                    d.regression ? "true" : "false");
      out += buf;
    }
    out += first ? "]" : "\n    ]";
    out += "}";
  }
  out += result.benches.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

}  // namespace zombiescope::obs

// table1_double_counting — reproduces Table 1: the estimated number of
// zombie outbreaks with and without double-counting (the Aggregator
// clock filter), for each period of the replication study, plus the
// "#visible prefixes" column.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/interval_detector.hpp"

using namespace zombiescope;

namespace {

struct PaperRow {
  int dc_v4, dc_v6, nd_v4, nd_v6, visible;
};
// Table 1 of the paper, for side-by-side comparison.
const PaperRow kPaper[3] = {
    {536, 745, 226, 514, 7126},
    {705, 1378, 478, 1370, 14336},
    {1781, 610, 1319, 610, 9556},
};

std::vector<scenarios::ScenarioOutput> g_outputs;

void print_table() {
  bench::print_header("Table 1 — zombie outbreaks with vs without double-counting",
                      "IMC'25 paper Table 1 (and Table 2's visible-prefix column)");
  std::vector<std::vector<std::string>> rows;
  for (int which = 0; which < 3; ++which) {
    const auto spec = bench::ris_spec(which);
    auto out = bench::load_ris_period(which);

    zombie::IntervalDetectorConfig config;
    for (const auto& peer : out.noisy_peers) config.excluded_peers.insert(peer);
    zombie::IntervalZombieDetector detector(config);
    const auto result = detector.detect(out.updates, out.events);

    int dc_v4 = 0, dc_v6 = 0, nd_v4 = 0, nd_v6 = 0;
    for (const auto& o : result.outbreaks_with_duplicates) (o.prefix.is_v4() ? dc_v4 : dc_v6)++;
    for (const auto& o : result.outbreaks_deduplicated) (o.prefix.is_v4() ? nd_v4 : nd_v6)++;

    rows.push_back({spec.label, std::to_string(dc_v4), std::to_string(dc_v6),
                    std::to_string(nd_v4), std::to_string(nd_v6),
                    std::to_string(result.visible_prefixes)});
    rows.push_back({"  (paper)", std::to_string(kPaper[which].dc_v4),
                    std::to_string(kPaper[which].dc_v6), std::to_string(kPaper[which].nd_v4),
                    std::to_string(kPaper[which].nd_v6),
                    std::to_string(kPaper[which].visible)});
    const double red_v4 =
        dc_v4 == 0 ? 0.0 : 100.0 * (dc_v4 - nd_v4) / static_cast<double>(dc_v4);
    const double red_v6 =
        dc_v6 == 0 ? 0.0 : 100.0 * (dc_v6 - nd_v6) / static_cast<double>(dc_v6);
    rows.push_back({"  reduction", analysis::fmt(red_v4, 1) + "%", analysis::fmt(red_v6, 1) + "%",
                    "", "", ""});
    g_outputs.push_back(std::move(out));
  }
  std::fputs(analysis::render_table({"Period", "With dc IPv4", "With dc IPv6",
                                     "Without dc IPv4", "Without dc IPv6", "#visible"},
                                    rows)
                 .c_str(),
             stdout);
  std::printf("Paper headline: filtering with the Aggregator clock removes ~21%% of\n"
              "outbreaks overall (2018: v4 -57.8%%, v6 -31%%; 2017 periods: v4 ~-30%%,\n"
              "v6 ~0%%) — stuck routes persist across beacon intervals for days.\n");
}

void BM_IntervalDetector2018(benchmark::State& state) {
  const auto& out = g_outputs[0];
  zombie::IntervalZombieDetector detector({});
  for (auto _ : state) {
    auto result = detector.detect(out.updates, out.events);
    benchmark::DoNotOptimize(result.outbreaks_with_duplicates.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.updates.size()));
}
BENCHMARK(BM_IntervalDetector2018)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

# Empty dependencies file for ablation_noisy_filter.
# This may be replaced when dependencies are built.

// simnet/router.hpp — a BGP speaker: Adj-RIB-In, Loc-RIB decision
// process, Adj-RIB-Out bookkeeping, and import policy (loop rejection
// and ROV).
//
// The Router is deliberately a passive state machine: the Simulation
// owns time, message delivery, delays and faults, and calls into the
// Router, collecting RibChange results to turn into exports. This
// keeps the zombie mechanics observable: a zombie is nothing more
// than an entry in one of these maps that should have been deleted.

#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "rpki/rov.hpp"
#include "simnet/route.hpp"
#include "topology/topology.hpp"

namespace zombiescope::simnet {

/// Everything import needs to know about "now".
struct ImportContext {
  netbase::TimePoint now = 0;
  const rpki::RoaTable* roas = nullptr;  // may be null (no RPKI in play)
};

class Router {
 public:
  Router(bgp::Asn asn, std::map<bgp::Asn, topology::Relationship> neighbors,
         rpki::RovPolicy rov_policy)
      : asn_(asn), neighbors_(std::move(neighbors)), rov_policy_(rov_policy) {}

  bgp::Asn asn() const { return asn_; }
  rpki::RovPolicy rov_policy() const { return rov_policy_; }
  const std::map<bgp::Asn, topology::Relationship>& neighbors() const { return neighbors_; }

  /// Starts originating `prefix` with the given attributes.
  std::optional<RibChange> originate(const netbase::Prefix& prefix,
                                     bgp::PathAttributes attributes,
                                     netbase::TimePoint now);

  /// Stops originating `prefix`.
  std::optional<RibChange> withdraw_origin(const netbase::Prefix& prefix);

  /// Why an announcement was (not) installed — reported through the
  /// `verdict` out-parameter of learn() so the causal tracer can tell
  /// a policy rejection apart from a route that merely lost the
  /// decision process (both return nullopt).
  enum class ImportVerdict : std::uint8_t {
    kAccepted = 0,      // stored; a RibChange follows iff best moved
    kLoopRejected = 1,  // own ASN in the AS path
    kRovRejected = 2,   // ROV Invalid at import
  };

  /// Processes an announcement received from `neighbor`. The path in
  /// `route.path` already includes the neighbor's prepend. Returns a
  /// change if the best route moved. Routes rejected by import policy
  /// (AS-path loop, ROV Invalid) are not stored.
  std::optional<RibChange> learn(bgp::Asn neighbor, const netbase::Prefix& prefix,
                                 RouteEntry route, const ImportContext& ctx,
                                 ImportVerdict* verdict = nullptr);

  /// Processes a withdrawal received from `neighbor`.
  std::optional<RibChange> unlearn(bgp::Asn neighbor, const netbase::Prefix& prefix);

  /// Session to `neighbor` went down: drop everything learned from it.
  std::vector<RibChange> flush_neighbor(bgp::Asn neighbor);

  /// Drops every *learned* route for `prefix` (keeps a self-originated
  /// one). Used by route-status auditors (RoST) that discover the
  /// prefix was withdrawn at the origin: all copies are stale.
  std::optional<RibChange> drop_learned_routes(const netbase::Prefix& prefix);

  /// Re-runs ROV over installed routes (compliant policy only):
  /// evicts routes that are now Invalid. Returns resulting changes.
  std::vector<RibChange> revalidate(const ImportContext& ctx);

  /// Current best route for `prefix`, if any.
  const RouteEntry* best(const netbase::Prefix& prefix) const;

  /// Relationship of the neighbor that supplied the current best
  /// (kCustomer for self-originated).
  std::optional<topology::Relationship> best_source(const netbase::Prefix& prefix) const;

  /// The neighbor the current best route was learned from (0 = the
  /// route is self-originated). nullopt if no route.
  std::optional<bgp::Asn> best_neighbor(const netbase::Prefix& prefix) const;

  /// All prefixes with a best route, with their source neighbor.
  std::vector<std::pair<netbase::Prefix, bgp::Asn>> fib_entries() const;

  /// All ⟨prefix, best route⟩ pairs (used for session re-advertisement
  /// and monitor full-table syncs).
  std::vector<std::pair<netbase::Prefix, RouteEntry>> full_table() const;

  /// The stale-route inspection API used by tests: the route (if any)
  /// held in the Adj-RIB-In for `prefix` from `neighbor`.
  const RouteEntry* adj_in(bgp::Asn neighbor, const netbase::Prefix& prefix) const;

  /// Adj-RIB-Out check: was `prefix` last advertised to `neighbor`?
  bool advertised_to(bgp::Asn neighbor, const netbase::Prefix& prefix) const;
  void mark_advertised(bgp::Asn neighbor, const netbase::Prefix& prefix, bool advertised);

  /// Valley-free export rule: may a route learned from `source` be
  /// exported to a neighbor we have relationship `to` with?
  static bool may_export(topology::Relationship source, topology::Relationship to);

 private:
  struct PrefixState {
    std::map<bgp::Asn, RouteEntry> adj_in;
    std::optional<RouteEntry> originated;
    /// Neighbor of the current best route; kSelf when originated wins.
    std::optional<bgp::Asn> best_neighbor;
    /// Neighbors the current route has been advertised to.
    std::map<bgp::Asn, bool> advertised;
  };
  static constexpr bgp::Asn kSelf = 0;

  /// Runs the decision process for one prefix after a mutation;
  /// `old_best` is the pre-mutation best-route value.
  std::optional<RibChange> decide(const netbase::Prefix& prefix, PrefixState& state,
                                  const std::optional<RouteEntry>& old_best);

  /// Snapshot of the current best route value.
  std::optional<RouteEntry> capture_best(const PrefixState& state) const;

  const RouteEntry* entry_for(const PrefixState& state, bgp::Asn neighbor) const;
  bool better(const PrefixState& state, bgp::Asn a, bgp::Asn b) const;
  topology::Relationship source_relationship(bgp::Asn neighbor) const;

  bgp::Asn asn_;
  std::map<bgp::Asn, topology::Relationship> neighbors_;
  rpki::RovPolicy rov_policy_;
  std::unordered_map<netbase::Prefix, PrefixState> prefixes_;
};

}  // namespace zombiescope::simnet

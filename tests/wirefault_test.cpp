// Tests for the session-layer fault scenarios (scenarios/wirefault):
// the full suite must score 100%, and each kind's ground-truth shape
// must match the contrast it was built to demonstrate — hold expiry
// prevents the zombie, send-hold stall and the GR/LLGR retentions
// manufacture one with the documented lifetime.

#include <gtest/gtest.h>

#include <set>

#include "scenarios/wirefault.hpp"

namespace zombiescope::scenarios {
namespace {

WireScenarioSpec spec_for(WireFaultKind kind, std::uint64_t seed = 1) {
  WireScenarioSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  return spec;
}

TEST(WirefaultSuite, EveryScenarioPassesAtOneHundredPercent) {
  std::vector<WireScenarioResult> results;
  for (const auto& spec : default_wire_suite(/*seeds=*/3))
    results.push_back(run_wire_scenario(spec));
  const auto summary = summarize_wire(results);
  EXPECT_EQ(summary.total, 12);
  for (const auto& r : results)
    EXPECT_TRUE(r.passed) << r.spec.name() << ": " << r.failure;
  EXPECT_EQ(summary.passed, summary.total);
  EXPECT_DOUBLE_EQ(summary.pass_rate(), 1.0);
  // Three of the four kinds manufacture a zombie; all zombies resolve.
  EXPECT_EQ(summary.zombies_expected, 9);
  EXPECT_EQ(summary.zombies_detected, 9);
  EXPECT_EQ(summary.resolutions_detected, summary.resolutions_expected);
}

TEST(WirefaultSuite, SuiteIsDeterministicPerSpec) {
  const auto spec = spec_for(WireFaultKind::kGrStaleRetention, 2);
  const auto a = run_wire_scenario(spec);
  const auto b = run_wire_scenario(spec);
  EXPECT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.measured_emergence, b.measured_emergence);
  EXPECT_EQ(a.measured_resolution, b.measured_resolution);
  EXPECT_EQ(a.session_drop_time, b.session_drop_time);
}

TEST(WirefaultSuite, SeedsVaryTheTimeline) {
  std::set<netbase::TimePoint> drops;
  for (std::uint64_t seed = 0; seed < 3; ++seed)
    drops.insert(
        run_wire_scenario(spec_for(WireFaultKind::kSendHoldStall, seed))
            .session_drop_time);
  EXPECT_EQ(drops.size(), 3u) << "seeds must actually jitter the run";
}

TEST(WirefaultHoldExpiry, SilentPeerDropsBeforeThresholdNoZombie) {
  const auto r = run_wire_scenario(spec_for(WireFaultKind::kHoldExpiry));
  ASSERT_TRUE(r.passed) << r.failure;
  EXPECT_FALSE(r.expect_zombie);
  EXPECT_EQ(r.alerts, 0);
  // The hold timer is the protection: the session dies well within one
  // hold time of the fault, far before the detection threshold.
  EXPECT_NE(r.drop_reason.find("hold timer"), std::string::npos);
  EXPECT_LE(r.session_drop_time, r.fault_time + r.spec.hold_time + 5);
  EXPECT_LT(r.session_drop_time, r.beacon.withdraw_time + r.spec.threshold);
}

TEST(WirefaultSendHoldStall, WedgedPeerMakesAZombieUntilRfc9687Fires) {
  const auto r = run_wire_scenario(spec_for(WireFaultKind::kSendHoldStall));
  ASSERT_TRUE(r.passed) << r.failure;
  EXPECT_TRUE(r.expect_zombie);
  EXPECT_EQ(r.alerts, 1);
  EXPECT_EQ(r.resolutions, 1);
  EXPECT_NE(r.drop_reason.find("send hold"), std::string::npos);
  // Emergence at withdraw + threshold; resolution when RFC 9687 tears
  // the wedged session down — which is *after* emergence, else there
  // would be no zombie to observe.
  EXPECT_EQ(r.measured_emergence, r.beacon.withdraw_time + r.spec.threshold);
  EXPECT_EQ(r.measured_resolution, r.session_drop_time);
  EXPECT_GT(r.session_drop_time, r.measured_emergence);
}

TEST(WirefaultGr, StaleRetentionZombieResolvesAtRestartExpiry) {
  const auto r = run_wire_scenario(spec_for(WireFaultKind::kGrStaleRetention));
  ASSERT_TRUE(r.passed) << r.failure;
  EXPECT_TRUE(r.expect_zombie);
  EXPECT_EQ(r.flush_reason, wire::FlushReason::kRestartExpired);
  EXPECT_EQ(r.measured_resolution, r.fault_time + r.spec.restart_time);
}

TEST(WirefaultLlgr, LongRetentionOutlivesTheRestartWindowByTheStaleTime) {
  const auto r = run_wire_scenario(spec_for(WireFaultKind::kLlgrLongRetention));
  ASSERT_TRUE(r.passed) << r.failure;
  EXPECT_TRUE(r.expect_zombie);
  EXPECT_EQ(r.flush_reason, wire::FlushReason::kLlgrExpired);
  // The paper's long-lived zombie: lifetime approximately the LLGR
  // stale window (a day), two orders past the GR-only case.
  const auto lifetime = r.measured_resolution - r.measured_emergence;
  EXPECT_GT(lifetime, 20 * netbase::kHour);
}

TEST(WirefaultNames, KindAndScenarioNamesAreStable) {
  EXPECT_EQ(to_string(WireFaultKind::kHoldExpiry), "hold_expiry");
  EXPECT_EQ(to_string(WireFaultKind::kSendHoldStall), "send_hold_stall");
  EXPECT_EQ(to_string(WireFaultKind::kGrStaleRetention), "gr_stale_retention");
  EXPECT_EQ(to_string(WireFaultKind::kLlgrLongRetention), "llgr_long_retention");
  EXPECT_EQ(spec_for(WireFaultKind::kSendHoldStall, 4).name(),
            "send_hold_stall/seed4");
}

}  // namespace
}  // namespace zombiescope::scenarios

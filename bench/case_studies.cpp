// case_studies — reproduces §5.2's two case studies plus the palm-tree
// root-cause inference:
//  * "Impactful zombie": 2a0d:3dc1:2233::/48 stuck in many peer
//    routers/ASes >= 3h after withdrawal, all sharing the subpath
//    "33891 25091 8298 210312" (suspect: Core-Backbone, ~2100-AS
//    cone), gone 4 days later;
//  * "Extremely long-lived zombie": 2a0d:3dc1:163::/48 stuck in
//    AS9304/AS17639 ~4.5 months and AS142271 ~4 months, subpath
//    "9304 6939 43100 25091 8298 210312" (suspect: HGC).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/longlived.hpp"
#include "zombie/rootcause.hpp"

using namespace zombiescope;

namespace {

scenarios::LongLived2024Output g_out;
zombie::ZombieOutbreak g_impactful;

void print_cases() {
  bench::print_header("Case studies — impactful & extremely long-lived outbreaks",
                      "IMC'25 paper §5.2 (palm-tree root-cause inference)");
  g_out = bench::load_longlived2024();

  // --- impactful zombie at the 3-hour mark -----------------------------
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto at180 = detector.detect(g_out.updates, g_out.events, 180 * netbase::kMinute);
  const zombie::ZombieOutbreak* impactful = nullptr;
  for (const auto& outbreak : at180.outbreaks)
    if (outbreak.prefix == g_out.impactful_prefix) impactful = &outbreak;

  std::printf("\nImpactful zombie: %s (paper: 2a0d:3dc1:2233::/48)\n",
              g_out.impactful_prefix.to_string().c_str());
  if (impactful == nullptr) {
    std::printf("  ERROR: not detected at the 3-hour mark\n");
  } else {
    g_impactful = *impactful;
    std::printf("  stuck >= 3h in %d peer routers / %d peer ASes (paper: 24 routers / 21 ASes)\n",
                impactful->peer_router_count(), impactful->peer_as_count());
    const auto cause = zombie::infer_root_cause(*impactful);
    std::printf("  common subpath: '%s' (paper: '33891 25091 8298 210312')\n",
                cause.common_subpath().c_str());
    std::printf("  palm-tree suspect: AS%u (paper: AS33891, Core-Backbone, ~2100-AS cone)\n",
                cause.suspect.value_or(0));
    std::printf("  ambiguous=%s single_route=%s\n", cause.ambiguous ? "yes" : "no",
                cause.single_route ? "yes" : "no");
  }

  // Duration of the impactful outbreak from RIB dumps (paper: 4 days).
  zombie::LifespanAnalyzer analyzer{zombie::LongLivedConfig{}};
  const auto lifespans =
      analyzer.analyze(g_out.rib_dumps, g_out.events, g_out.rib_dump_interval);
  for (const auto& l : lifespans) {
    if (l.prefix == g_out.impactful_prefix)
      std::printf("  disappeared from all RIBs after %.1f days (paper: 4 days)\n",
                  static_cast<double>(l.duration()) / netbase::kDay);
  }

  // --- extremely long-lived zombie --------------------------------------
  std::printf("\nExtremely long-lived zombie: %s (paper: 2a0d:3dc1:163::/48)\n",
              g_out.longest_prefix.to_string().c_str());
  for (const auto& l : lifespans) {
    if (l.prefix != g_out.longest_prefix) continue;
    std::map<bgp::Asn, std::pair<netbase::TimePoint, netbase::TimePoint>> per_as;
    std::vector<bgp::AsPath> paths;
    for (const auto& interval : l.intervals) {
      auto [it, inserted] = per_as.try_emplace(
          interval.peer.asn, std::make_pair(interval.first_seen, interval.last_seen));
      if (!inserted) {
        it->second.first = std::min(it->second.first, interval.first_seen);
        it->second.second = std::max(it->second.second, interval.last_seen);
      }
      paths.push_back(interval.path);
    }
    for (const auto& [asn, window] : per_as) {
      std::printf("  AS%u: %s .. %s (%.1f months)\n", asn,
                  netbase::format_date(window.first).c_str(),
                  netbase::format_date(window.second).c_str(),
                  static_cast<double>(window.second - window.first) / netbase::kDay / 30.4);
    }
    const auto cause = zombie::infer_root_cause(paths);
    std::printf("  common subpath: '%s'\n  (paper: '9304 6939 43100 25091 8298 210312')\n",
                cause.common_subpath().c_str());
    std::printf("  palm-tree suspect: AS%u (paper: AS9304, HGC, ~750-AS cone)\n",
                cause.suspect.value_or(0));
  }
  std::printf("\nPaper: AS9304/AS17639 held the route 2024-06-18..2024-11-03 (~4.5 months);\n"
              "AS142271 2024-06-23..2024-10-25 (~4 months).\n");
}

void BM_RootCause(benchmark::State& state) {
  for (auto _ : state) {
    auto cause = zombie::infer_root_cause(g_impactful);
    benchmark::DoNotOptimize(cause.suspect);
  }
}
BENCHMARK(BM_RootCause);

}  // namespace

int main(int argc, char** argv) {
  print_cases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// zombie/rootcause.hpp — the "palm tree" root-cause inference of §5.2.
//
// The AS graph of an outbreak's zombie routes typically has a single
// chain from the origin that eventually branches into subtrees; the
// last AS of that chain is the suspected zombie propagator. The
// inference is heuristic — the paper is explicit that the previous AS
// could have failed to propagate the withdrawal, or invisible IXP
// route servers may hide the real culprit — so the result carries the
// full chain and a confidence note rather than a bare verdict.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "zombie/types.hpp"

namespace zombiescope::zombie {

struct RootCauseResult {
  /// The chain from the origin AS up to the first branch point
  /// (origin first). Empty if the outbreak has no routes.
  std::vector<bgp::Asn> chain;
  /// The last AS of the chain — the suspect.
  std::optional<bgp::Asn> suspect;
  /// True if the paths diverge right at the origin (no usable chain).
  bool ambiguous = false;
  /// True if only one zombie route exists: the whole path is a chain
  /// and the "branch point" is unobservable.
  bool single_route = false;

  /// "33891 25091 8298 210312"-style rendering of the common subpath
  /// (from the chain's end back to the origin, as the paper prints it).
  std::string common_subpath() const;
};

/// Infers the root cause from the zombie routes' AS paths.
RootCauseResult infer_root_cause(const ZombieOutbreak& outbreak);

/// Same, from raw paths (peer-first order, origin last).
RootCauseResult infer_root_cause(const std::vector<bgp::AsPath>& paths);

}  // namespace zombiescope::zombie

// zslived — the live zombie-detection daemon.
//
// Runs the zslive service (live/service.hpp) against one of three
// feeds and serves the result over HTTP while it happens:
//
//   zslived --replay updates.mrt --schedule daily --start 2024-03-01 \
//           --end 2024-03-02 --speed 60 --http-port 8080
//       replays an archived day at 60 simulated seconds per wall
//       second; curl /live/zombies for the current stuck set,
//       curl -N /live/events for the emerge/resurrect/die stream.
//
//   zslived --tap-demo --http-port 8080 --duration 30
//       self-contained demo: a small simulation with a collector
//       session that loses every withdrawal, so zombies emerge and
//       die while you watch. This is what the sanitizer soak runs.
//
//   zslived --tcp-port 9000 --schedule ris --start ... --end ...
//       accepts RIS-Live-style NDJSON on a TCP socket (one JSON
//       object per line) and detects on it as it arrives.
//
//   zslived --bgp-listen 1790 --schedule ris --start ... --end ...
//       a real BGP-4 collector: accepts peering sessions (RFC 4271
//       OPEN/KEEPALIVE/UPDATE over TCP), optionally with graceful-
//       restart stale retention (--gr-restart / --llgr-stale), and
//       detects on what the peers announce. --bgp-peer HOST:PORT
//       (repeatable) dials out as well. curl /sessions for the live
//       session table.
//
// Endpoints: /live/zombies (JSON snapshot, ETag = epoch), /live/events
// (SSE), /live/stats (shard health), /sessions (BGP mode), plus the
// standard zsobs set (/metrics, /healthz, /spans, /journal/tail,
// /causal, /profile, /heap).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "beacon/schedule.hpp"
#include "live/bgp_feed.hpp"
#include "live/feed.hpp"
#include "live/loopback.hpp"
#include "live/service.hpp"
#include "netbase/time.hpp"
#include "obs/build_info.hpp"
#include "obs/export.hpp"
#include "obs/heap.hpp"
#include "obs/http.hpp"
#include "obs/journal.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"

using namespace zombiescope;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--replay FILE | --tcp-port N | --tap-demo | --bgp-listen N)\n"
      "          [--bgp-peer HOST:PORT]... [--local-asn N]\n"
      "          [--gr-restart SECONDS] [--llgr-stale SECONDS]\n"
      "          [--speed N] [--duration WALL_SECONDS]\n"
      "          [--schedule ris|daily|fifteen --start YYYY-MM-DD --end YYYY-MM-DD]\n"
      "          [--shards N] [--queue-depth N] [--threshold MINUTES]\n"
      "          [--block-on-full] [--http-port N] [--print-zombies]\n"
      "          [--stale-after SECONDS] [--no-loopback]\n"
      "          [--tsdb-cadence-ms N (0 disables)] [--sse-pump-ms N]\n"
      "          [--metrics-out FILE] [--metrics-format prom|json]\n"
      "          [--trace-out FILE] [--journal-out FILE]\n"
      "          [--journal-format ndjson|bin] [--journal-categories LIST]\n"
      "          [--profile-out FILE] [--heap-out FILE] [--version]\n",
      argv0);
  std::exit(2);
}

netbase::TimePoint parse_date(const char* argv0, const std::string& text) {
  int y = 0;
  int m = 0;
  int d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    std::fprintf(stderr, "error: bad date '%s' (want YYYY-MM-DD)\n", text.c_str());
    usage(argv0);
  }
  return netbase::utc(y, m, d);
}

volatile std::sig_atomic_t g_interrupted = 0;
void on_signal(int) { g_interrupted = 1; }

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::puts(obs::identity_line("zslived").c_str());
      return 0;
    }
  }

  std::string replay_path;
  int tcp_port = -1;
  bool tap_demo = false;
  int bgp_port = -1;
  std::vector<std::string> bgp_peers;
  std::uint32_t local_asn = 64999;
  long gr_restart = 0;   // > 0 enables graceful-restart retention
  long llgr_stale = 0;   // > 0 additionally enables LLGR
  double speed = 0.0;  // replay: <= 0 = max; tap: <= 0 = default 60
  long duration = 0;   // wall seconds; 0 = until the feed ends (replay) / forever
  std::string schedule;
  netbase::TimePoint start = 0;
  netbase::TimePoint end = 0;
  live::LiveConfig live_config;
  int http_port = -1;
  bool print_zombies = false;
  // /healthz readiness threshold: 0 keeps the plain liveness probe;
  // > 0 answers 503 degraded once no shard published within it.
  double stale_after = 0.0;
  // The end-to-end delivery-latency self-subscriber (live/loopback.hpp)
  // runs whenever HTTP is served; --no-loopback opts out.
  bool loopback = true;
  // zstsdb sampler cadence; 0 disables the store (and the alert rules
  // that ride on it). A ZS_TSDB=OFF build compiles all of it away.
  long tsdb_cadence_ms = 1000;
  // Fallback SSE pump interval; frame delivery itself is event-driven
  // (publish wakes the serving loop through a self-pipe).
  int sse_pump_ms = 0;  // 0 = server default
  std::string metrics_out;
  obs::Format metrics_format = obs::Format::kJson;
  std::string trace_out;
  std::string journal_out;
  obs::JournalFormat journal_format = obs::JournalFormat::kNdjson;
  std::uint32_t journal_categories = obs::kCatAll;
  std::string profile_out;
  std::string heap_out;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--replay") replay_path = need_value(i);
      else if (arg == "--tcp-port") tcp_port = std::stoi(need_value(i));
      else if (arg == "--tap-demo") tap_demo = true;
      else if (arg == "--bgp-listen") bgp_port = std::stoi(need_value(i));
      else if (arg == "--bgp-peer") bgp_peers.push_back(need_value(i));
      else if (arg == "--local-asn")
        local_asn = static_cast<std::uint32_t>(std::stoul(need_value(i)));
      else if (arg == "--gr-restart") gr_restart = std::stol(need_value(i));
      else if (arg == "--llgr-stale") llgr_stale = std::stol(need_value(i));
      else if (arg == "--speed") speed = std::stod(need_value(i));
      else if (arg == "--duration") duration = std::stol(need_value(i));
      else if (arg == "--schedule") schedule = need_value(i);
      else if (arg == "--start") start = parse_date(argv[0], need_value(i));
      else if (arg == "--end") end = parse_date(argv[0], need_value(i));
      else if (arg == "--shards")
        live_config.shards = static_cast<std::size_t>(std::stoul(need_value(i)));
      else if (arg == "--queue-depth")
        live_config.queue_depth = static_cast<std::size_t>(std::stoul(need_value(i)));
      else if (arg == "--threshold")
        live_config.detector.threshold = std::stol(need_value(i)) * netbase::kMinute;
      else if (arg == "--block-on-full") live_config.block_on_full = true;
      else if (arg == "--http-port") http_port = std::stoi(need_value(i));
      else if (arg == "--print-zombies") print_zombies = true;
      else if (arg == "--stale-after") stale_after = std::stod(need_value(i));
      else if (arg == "--no-loopback") loopback = false;
      else if (arg == "--tsdb-cadence-ms") tsdb_cadence_ms = std::stol(need_value(i));
      else if (arg == "--sse-pump-ms") sse_pump_ms = std::stoi(need_value(i));
      else if (arg == "--metrics-out") metrics_out = need_value(i);
      else if (arg == "--metrics-format") {
        const auto parsed = obs::parse_format(need_value(i));
        if (!parsed.has_value()) usage(argv[0]);
        metrics_format = *parsed;
      } else if (arg == "--trace-out") trace_out = need_value(i);
      else if (arg == "--journal-out") journal_out = need_value(i);
      else if (arg == "--journal-format") {
        const auto parsed = obs::parse_journal_format(need_value(i));
        if (!parsed.has_value()) usage(argv[0]);
        journal_format = *parsed;
      } else if (arg == "--journal-categories") {
        const auto parsed = obs::parse_categories(need_value(i));
        if (!parsed.has_value()) usage(argv[0]);
        journal_categories = *parsed;
      } else if (arg == "--profile-out") profile_out = need_value(i);
      else if (arg == "--heap-out") heap_out = need_value(i);
      else usage(argv[0]);
    } catch (const std::exception&) {
      usage(argv[0]);
    }
  }

  const int feed_modes = (replay_path.empty() ? 0 : 1) + (tcp_port >= 0 ? 1 : 0) +
                         (tap_demo ? 1 : 0) + (bgp_port >= 0 ? 1 : 0);
  if (feed_modes != 1) {
    std::fprintf(stderr,
                 "error: pick exactly one of --replay / --tcp-port / --tap-demo "
                 "/ --bgp-listen\n");
    usage(argv[0]);
  }
  if (!bgp_peers.empty() && bgp_port < 0) {
    std::fprintf(stderr, "error: --bgp-peer needs --bgp-listen (0 = ephemeral)\n");
    usage(argv[0]);
  }
  if (!schedule.empty() && (start == 0 || end == 0 || end <= start)) {
    std::fprintf(stderr, "error: --schedule needs --start and --end\n");
    usage(argv[0]);
  }

  obs::ScopedProfileSession profile(profile_out);
  obs::ScopedHeapSession heap(heap_out);
  obs::Journal& journal = obs::Journal::global();
  if (!journal_out.empty()) {
    try {
      journal.attach_writer(
          std::make_unique<obs::JournalWriter>(journal_out, journal_format));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    journal.set_enabled_categories(journal_categories);
    // Shard workers emit concurrently; only the serving/drain side may
    // pump, so autopump (which pumps from producers) stays off.
  }

  // The tap demo defaults to a threshold scaled to its short beacon
  // cycle so transitions happen within a brief soak.
  if (tap_demo && live_config.detector.threshold == 90 * netbase::kMinute) {
    live_config.detector.threshold = 5 * netbase::kMinute;
  }

  live::LiveService service(live_config);
  service.start();

  // Beacon expectations: replay/tcp use the operator-provided
  // schedule; the tap generates its own.
  live::SimTapConfig tap_config;
  if (tap_demo) {
    tap_config.speed = speed > 0 ? speed : 60.0;
    if (duration > 0) {
      tap_config.duration =
          static_cast<netbase::Duration>(static_cast<double>(duration) * tap_config.speed);
    }
  }
  std::unique_ptr<live::FeedSource> feed;
  live::BgpFeedSource* bgp_feed = nullptr;  // borrowed view of `feed`
  std::vector<beacon::BeaconEvent> events;
  if (!schedule.empty()) {
    if (schedule == "ris") {
      events = beacon::RisBeaconSchedule::classic().events(start, end);
    } else if (schedule == "daily") {
      events = beacon::LongLivedBeaconSchedule::paper_deployment(
                   beacon::LongLivedBeaconSchedule::Approach::kDaily)
                   .events(start, end);
    } else if (schedule == "fifteen") {
      events = beacon::LongLivedBeaconSchedule::paper_deployment(
                   beacon::LongLivedBeaconSchedule::Approach::kFifteenDay)
                   .events(start, end);
    } else {
      std::fprintf(stderr, "error: unknown schedule '%s'\n", schedule.c_str());
      usage(argv[0]);
    }
  }
  try {
    if (!replay_path.empty()) {
      feed = live::ReplayFeedSource::from_file(replay_path, speed);
    } else if (tcp_port >= 0) {
      feed = std::make_unique<live::TcpNdjsonFeedSource>(
          static_cast<std::uint16_t>(tcp_port));
      std::fprintf(stderr, "NDJSON feed on port %u\n",
                   static_cast<live::TcpNdjsonFeedSource*>(feed.get())->port());
    } else if (bgp_port >= 0) {
      wire::SpeakerConfig speaker_config;
      speaker_config.local_asn = local_asn;
      if (gr_restart > 0) {
        speaker_config.retention.gr_enabled = true;
        speaker_config.advertised_restart_time = gr_restart;
        if (llgr_stale > 0) {
          speaker_config.retention.llgr_enabled = true;
          speaker_config.advertised_llgr_stale_time = llgr_stale;
        }
      }
      auto bgp = std::make_unique<live::BgpFeedSource>(
          speaker_config, static_cast<std::uint16_t>(bgp_port));
      for (const std::string& peer : bgp_peers) {
        const auto colon = peer.rfind(':');
        if (colon == std::string::npos) {
          std::fprintf(stderr, "error: --bgp-peer wants HOST:PORT, got '%s'\n",
                       peer.c_str());
          usage(argv[0]);
        }
        bgp->connect_to(peer.substr(0, colon),
                        static_cast<std::uint16_t>(
                            std::stoul(peer.substr(colon + 1))));
      }
      bgp_feed = bgp.get();
      std::fprintf(stderr, "BGP feed on port %u\n", bgp->port());
      feed = std::move(bgp);
    } else {
      auto tap = std::make_unique<live::SimTapFeedSource>(tap_config);
      events = tap->schedule();
      feed = std::move(tap);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  for (const beacon::BeaconEvent& event : events) service.expect(event);

  // The time-series store: samples the registries plus three service
  // probes each cadence, and watches the default alert rules. Declared
  // after `service` (probes reference it) and stopped before it.
  obs::TsdbConfig tsdb_config;
  tsdb_config.cadence_ms = tsdb_cadence_ms > 0 ? tsdb_cadence_ms : 1000;
  obs::Tsdb tsdb(tsdb_config);
  const bool tsdb_on = obs::kTsdbCompiledIn && tsdb_cadence_ms > 0;
  if (tsdb_on) {
    tsdb.add_probe("live.snapshot_age_seconds", obs::SeriesKind::kGauge,
                   [&service] {
                     const double age = service.newest_publish_age_seconds();
                     return age < 0.0 ? 0.0 : age;
                   });
    tsdb.add_probe("live.queue_depth", obs::SeriesKind::kGauge, [&service] {
      std::size_t depth = 0;
      for (const live::ShardStats& s : service.stats()) depth += s.queue_depth;
      return static_cast<double>(depth);
    });
    tsdb.add_probe("live.active_zombies", obs::SeriesKind::kGauge, [&service] {
      std::size_t active = 0;
      for (const live::ShardStats& s : service.stats()) {
        active += s.active_zombies;
      }
      return static_cast<double>(active);
    });

    // Ingest drops: any sustained drop rate is a capacity problem.
    obs::AlertRule drops;
    drops.name = "queue_drops";
    drops.metric = "live.ingest_dropped_total";
    drops.mode = obs::AlertRule::Mode::kRate;
    drops.threshold = 0.0;
    drops.for_seconds = 30.0;
    drops.clear_for_seconds = 15.0;
    tsdb.add_rule(drops);

    // Delivery-latency regression: e2e p99 above 2x its own trailing
    // 5-minute baseline for a minute (hysteresis clears at 1.5x).
    obs::AlertRule p99;
    p99.name = "e2e_p99_regression";
    p99.metric = "latency:live.e2e:p99";
    p99.mode = obs::AlertRule::Mode::kBaselineRatio;
    p99.threshold = 2.0;
    p99.clear_threshold = 1.5;
    p99.for_seconds = 60.0;
    p99.clear_for_seconds = 30.0;
    p99.baseline_window_seconds = 300.0;
    p99.baseline_min_samples = 60;
    tsdb.add_rule(p99);

    // Stale snapshot: every worker wedged (or the service stopped)
    // shows up as a growing publish age well before operators notice.
    obs::AlertRule stale;
    stale.name = "stale_snapshot";
    stale.metric = "live.snapshot_age_seconds";
    stale.threshold = stale_after > 0.0 ? stale_after : 5.0;
    stale.clear_threshold = stale.threshold / 2.0;
    stale.for_seconds = 10.0;
    stale.clear_for_seconds = 5.0;
    tsdb.add_rule(stale);

    // Peer feed quality (zspeerq). The probe polls the merged peer
    // table each cadence, which also refreshes the zs_peer_* gauges
    // the registry sweep stores as peer.* — so noisy/silent counts and
    // the top-K offender slots get 1 s series without any extra work.
    tsdb.add_probe("peer.feeding_count_probe", obs::SeriesKind::kGauge,
                   [&service] {
                     const auto table = service.peers();
                     return static_cast<double>(table->feeding_count);
                   });

    // Every peer went quiet (kBelow: the feed floor dropped under 1
    // feeding peer) while the daemon keeps running — the exact failure
    // mode behind the paper's looking-glass disagreements. for=30 s
    // tolerates startup: the first updates arrive well inside that.
    obs::AlertRule silent_peers;
    silent_peers.name = "peers_silent";
    silent_peers.metric = "peer.feeding_count_probe";
    silent_peers.op = obs::AlertRule::Op::kBelow;
    silent_peers.threshold = 1.0;
    silent_peers.for_seconds = 30.0;
    silent_peers.clear_for_seconds = 5.0;
    tsdb.add_rule(silent_peers);

    // A noisy-peer population spike: statistically-excluded peers
    // sustained above zero means zombie counts upstream of the filter
    // are inflated and the feed needs operator attention.
    obs::AlertRule noisy_spike;
    noisy_spike.name = "noisy_count_spike";
    noisy_spike.metric = "peer.noisy_count";
    noisy_spike.threshold = 0.0;
    noisy_spike.for_seconds = 30.0;
    noisy_spike.clear_for_seconds = 15.0;
    tsdb.add_rule(noisy_spike);
  }

  obs::HttpServer http;
  std::unique_ptr<live::LoopbackLatencyClient> e2e_client;
  if (http_port >= 0) {
    if (sse_pump_ms > 0) http.set_stream_poll_interval_ms(sse_pump_ms);
    std::function<std::string()> alerts_degraded;
    if (tsdb_on) {
      alerts_degraded = [&tsdb]() -> std::string {
        const std::string firing = tsdb.firing_names();
        return firing.empty() ? std::string() : "alerts firing: " + firing;
      };
      tsdb.attach_http(http);
    }
    service.attach_http(http, stale_after, std::move(alerts_degraded));
    if (bgp_feed != nullptr) bgp_feed->attach_http(http);
    if (!http.start(static_cast<std::uint16_t>(http_port))) {
      std::fprintf(stderr, "error: cannot bind HTTP port %d\n", http_port);
      return 1;
    }
    std::fprintf(stderr, "serving http://127.0.0.1:%u/live/zombies\n", http.port());
    if (loopback) {
      // Subscribe to our own /live/events so GET /latency (and the
      // "stages" block of /live/stats) reports true end-to-end
      // delivery latency, not just the internal stage times.
      e2e_client = std::make_unique<live::LoopbackLatencyClient>(http.port());
      if (!e2e_client->start()) {
        std::fprintf(stderr, "warning: loopback latency subscriber failed to connect\n");
        e2e_client.reset();
      }
    }
  }

  if (tsdb_on) tsdb.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  live::FeedSource::RunStats feed_stats;
  std::atomic<bool> feed_done{false};
  std::thread feeder([&] {
    obs::ScopedSpan span("zslived.feed");
    feed_stats = feed->run(service);
    feed_done.store(true, std::memory_order_release);
  });

  // Main thread: journal pump + wall-clock bound + signal watch. The
  // feeder returns on its own for a finite replay/tap; --duration (or
  // Ctrl-C) bounds the open-ended feeds.
  const auto wall0 = std::chrono::steady_clock::now();
  bool stop_requested = false;
  while (!feed_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!journal_out.empty()) journal.pump();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    if (!stop_requested &&
        (g_interrupted != 0 || (duration > 0 && elapsed >= static_cast<double>(duration)))) {
      feed->stop();
      stop_requested = true;
    }
  }
  feeder.join();

  // The replay delivered everything; fire the deadlines that fall
  // after the last record so the final state matches batch detection.
  if (!replay_path.empty()) service.finalize();

  std::fprintf(stderr,
               "feed done: %llu record(s), %llu parse error(s); "
               "%llu processed, %llu dropped, epoch %llu\n",
               static_cast<unsigned long long>(feed_stats.records),
               static_cast<unsigned long long>(feed_stats.parse_errors),
               static_cast<unsigned long long>(service.processed()),
               static_cast<unsigned long long>(service.drops()),
               static_cast<unsigned long long>(service.epoch()));
  if (print_zombies) std::printf("%s\n", service.zombies_json().c_str());

  try {
    if (!metrics_out.empty()) obs::write_metrics_file(metrics_out, metrics_format);
    if (!trace_out.empty()) obs::write_trace_file(trace_out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!journal_out.empty()) {
    journal.close_writer();
    std::fprintf(stderr, "journal: %llu event(s) written to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(journal.emitted()), journal_out.c_str(),
                 static_cast<unsigned long long>(journal.dropped()));
  }
  if (e2e_client) {
    std::fprintf(stderr, "loopback e2e: %llu delivery sample(s)\n",
                 static_cast<unsigned long long>(e2e_client->samples()));
    e2e_client->stop();
  }
  http.stop();
  tsdb.stop();
  service.stop();
  return 0;
}

// obs/trace.hpp — phase/span tracing.
//
// A ScopedSpan is an RAII timer: construction stamps a steady-clock
// start, destruction records a completed SpanRecord into the owning
// Tracer's bounded ring buffer. Spans nest — a thread-local stack
// links each span to the one open above it, so a scenario run yields a
// parent/child phase tree (topology build → simulate → collect →
// detect → analyze) that exporters can turn into per-stage wall-time
// attribution. When the Tracer is disabled, constructing a ScopedSpan
// does not even read the clock — tracing is zero-overhead when idle.
//
// The ring buffer is fixed-size: when full, the oldest completed span
// is overwritten (total_recorded() keeps the true count), so a
// long-running process cannot grow without bound.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace zombiescope::obs {

/// One completed span. Timestamps are steady-clock nanoseconds
/// relative to the tracer's epoch (its construction or last reset).
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root (no enclosing span)
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;

  std::int64_t end_ns() const { return start_ns + duration_ns; }
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  /// The process-wide tracer the instrumented modules report to.
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  /// Resizes the ring buffer, dropping buffered spans.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Completed spans still in the buffer, oldest first.
  std::vector<SpanRecord> snapshot() const;
  /// All spans ever recorded, including ones overwritten by the ring.
  std::uint64_t total_recorded() const { return total_.load(std::memory_order_relaxed); }
  /// Spans the bounded ring could not keep (overwritten or refused);
  /// nonzero means snapshot() is silently missing history.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Binds a registry counter (zs_obs_spans_dropped_total) bumped on
  /// every drop, so truncation is visible in metric snapshots too.
  /// global() binds automatically.
  void set_dropped_counter(Counter counter) { m_dropped_ = counter; }

  /// Drops buffered spans and restarts the time epoch.
  void reset();

  /// Nanoseconds since the tracer's epoch.
  std::int64_t now_ns() const;

  /// Used by ScopedSpan; appends a completed span to the ring.
  void record(SpanRecord record);

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> dropped_{0};
  Counter m_dropped_;
  std::atomic<std::uint64_t> next_id_{1};
  std::int64_t epoch_ns_ = 0;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_ = 4096;
  std::size_t head_ = 0;  // next slot to overwrite once full

  friend class ScopedSpan;
};

/// RAII phase timer. Records into the given tracer (the global one by
/// default) on destruction; a no-op if the tracer is disabled at
/// construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was disabled
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::int64_t start_ns_ = 0;
  // True when this span registered itself with the zsprof profiler's
  // per-thread span stack (only while a profiling session is active).
  bool prof_pushed_ = false;
  // Same flag for the zsheap allocation profiler's span stack.
  bool heap_pushed_ = false;
};

}  // namespace zombiescope::obs

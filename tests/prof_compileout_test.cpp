// Verifies the ZS_PROF_ENABLED=0 build really compiles the profiler
// out: this target recompiles prof.cpp/trace.cpp/metrics.cpp with the
// macro forced to 0 (see tests/CMakeLists.txt) instead of linking
// zs_obs, mirroring how ZS_JOURNAL_CATEGORIES compile-out is proven.

#include <gtest/gtest.h>

#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace obs = zombiescope::obs;

static_assert(!obs::kProfCompiledIn,
              "this test must be built with ZS_PROF_ENABLED=0");

namespace {

TEST(ObsProfCompileOut, EveryEntryPointIsInert) {
  obs::Profiler& profiler = obs::Profiler::global();
  EXPECT_FALSE(profiler.start());
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.samples_captured(), 0u);
  const obs::ProfileReport report = profiler.stop();
  EXPECT_FALSE(report.valid);
  EXPECT_EQ(report.samples, 0u);
}

TEST(ObsProfCompileOut, HooksAreInlineNoOps) {
  EXPECT_FALSE(obs::prof_attribution_active());
  EXPECT_EQ(obs::prof_intern("anything"), nullptr);
  // Must not crash; these compile to empty inline functions.
  obs::prof_push_span(nullptr);
  obs::prof_pop_span();
  obs::prof_register_thread();
}

TEST(ObsProfCompileOut, SpansStillWork) {
  // ScopedSpan guards its profiler registration with
  // `if constexpr (kProfCompiledIn)`, so tracing is unaffected.
  {
    obs::ScopedSpan outer("compileout.outer");
    obs::ScopedSpan inner("compileout.inner");
  }
  const auto spans = obs::Tracer::global().snapshot();
  bool saw_outer = false;
  bool saw_inner = false;
  for (const auto& span : spans) {
    if (span.name == "compileout.outer") saw_outer = true;
    if (span.name == "compileout.inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(ObsProfCompileOut, ScopedProfileSessionDegradesGracefully) {
  obs::ScopedProfileSession session("/tmp/zs_prof_compileout_never_written");
  EXPECT_FALSE(session.active());
}

TEST(ObsProfCompileOut, ReportRenderingStillAvailable) {
  // Rendering (used by zsbenchdiff fixtures and parse_folded) stays
  // compiled in even when sampling is not.
  obs::ProfileReport report;
  report.valid = true;
  report.folded["a;b"] = 2;
  EXPECT_EQ(obs::parse_folded(report.to_folded()), report.folded);
}

}  // namespace

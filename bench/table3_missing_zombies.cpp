// table3_missing_zombies — reproduces Table 3: the number of zombie
// routes and outbreaks that each methodology misses relative to the
// other, aggregated over the three replication periods. "Study"
// misses events the raw methodology reports (late re-announcements
// inside the looking-glass lag) and vice versa (withdrawals inside
// the lag window).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/lookingglass.hpp"

using namespace zombiescope;

namespace {

std::vector<zombie::ZombieRoute> g_routes_a, g_routes_b;
std::vector<zombie::ZombieOutbreak> g_breaks_a, g_breaks_b;

void print_table() {
  bench::print_header("Table 3 — zombies missed by each methodology",
                      "IMC'25 paper Table 3 (App. B.1)");
  zombie::MissingCounts study_misses{};   // in our results, absent from study's
  zombie::MissingCounts ours_misses{};    // in study's results, absent from ours

  for (int which = 0; which < 3; ++which) {
    auto out = bench::load_ris_period(which);
    // For this comparison the noisy peer stays in (the paper counts
    // "including the ones from the noisy peer").
    zombie::IntervalZombieDetector raw({});
    const auto raw_result = raw.detect(out.updates, out.events);
    zombie::LookingGlassDetector study{zombie::LookingGlassConfig{}};
    const auto study_result = study.detect(out.updates, out.events);

    const auto sm = zombie::count_missing(raw_result.routes,
                                          raw_result.outbreaks_with_duplicates,
                                          study_result.routes, study_result.outbreaks);
    const auto om = zombie::count_missing(study_result.routes, study_result.outbreaks,
                                          raw_result.routes,
                                          raw_result.outbreaks_with_duplicates);
    study_misses.routes_v4 += sm.routes_v4;
    study_misses.routes_v6 += sm.routes_v6;
    study_misses.outbreaks_v4 += sm.outbreaks_v4;
    study_misses.outbreaks_v6 += sm.outbreaks_v6;
    ours_misses.routes_v4 += om.routes_v4;
    ours_misses.routes_v6 += om.routes_v6;
    ours_misses.outbreaks_v4 += om.outbreaks_v4;
    ours_misses.outbreaks_v6 += om.outbreaks_v6;
    if (which == 0) {
      g_routes_a = raw_result.routes;
      g_breaks_a = raw_result.outbreaks_with_duplicates;
      g_routes_b = study_result.routes;
      g_breaks_b = study_result.outbreaks;
    }
  }

  std::fputs(
      analysis::render_table(
          {"Side", "Missing routes v4", "Missing routes v6", "Missing outbreaks v4",
           "Missing outbreaks v6"},
          {{"Study [4] misses", std::to_string(study_misses.routes_v4),
            std::to_string(study_misses.routes_v6), std::to_string(study_misses.outbreaks_v4),
            std::to_string(study_misses.outbreaks_v6)},
           {"  (paper)", "4956", "4374", "616", "308"},
           {"Our results miss", std::to_string(ours_misses.routes_v4),
            std::to_string(ours_misses.routes_v6), std::to_string(ours_misses.outbreaks_v4),
            std::to_string(ours_misses.outbreaks_v6)},
           {"  (paper)", "22110", "15169", "230", "54"}})
          .c_str(),
      stdout);
  std::printf("Paper headline: 'surprisingly, each side misses zombie routes and\n"
              "outbreaks that the other reports' — both columns are non-zero.\n");
}

void BM_CountMissing(benchmark::State& state) {
  for (auto _ : state) {
    auto counts = zombie::count_missing(g_routes_a, g_breaks_a, g_routes_b, g_breaks_b);
    benchmark::DoNotOptimize(counts.routes_v4);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g_routes_a.size()));
}
BENCHMARK(BM_CountMissing)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

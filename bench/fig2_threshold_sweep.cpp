// fig2_threshold_sweep — reproduces Figure 2: the number of zombie
// outbreaks (right axis) and the percentage of beacon announcements
// leading to outbreaks (left axis) as a function of the stuck
// threshold (90–180 minutes after withdrawal), for (i) all peers and
// (ii) with the three noisy peers excluded. The shape to reproduce:
// the clean line declines from ~6.6 % / 108 outbreaks at 90 min to
// ~2 % / 34 at 180 min (31.4 % survival), flattens around 150–160 min,
// and *rises* after ~165 min — the resurrection uptick caused by new
// announcements through the Telstra-analogue AS4637.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/longlived.hpp"

using namespace zombiescope;

namespace {

scenarios::LongLived2024Output g_out;
std::vector<netbase::Duration> g_thresholds;

void print_figure() {
  bench::print_header("Figure 2 — outbreaks vs stuck-threshold, all peers vs noisy excluded",
                      "IMC'25 paper Fig. 2 + §5.1 (the >160-minute uptick)");
  g_out = bench::load_longlived2024();

  for (int minutes = 90; minutes <= 180; minutes += 10)
    g_thresholds.push_back(minutes * netbase::kMinute);

  zombie::LongLivedZombieDetector all{zombie::LongLivedConfig{}};
  zombie::LongLivedConfig clean_config;
  for (const auto& peer : g_out.noisy_peers) clean_config.excluded_peers.insert(peer);
  zombie::LongLivedZombieDetector clean{clean_config};

  const auto sweep_all = all.sweep(g_out.updates, g_out.events, g_thresholds);
  const auto sweep_clean = clean.sweep(g_out.updates, g_out.events, g_thresholds);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sweep_all.size(); ++i) {
    rows.push_back({std::to_string(sweep_all[i].threshold / netbase::kMinute) + "m",
                    std::to_string(sweep_all[i].outbreaks),
                    analysis::pct(sweep_all[i].announcement_fraction),
                    std::to_string(sweep_clean[i].outbreaks),
                    analysis::pct(sweep_clean[i].announcement_fraction)});
  }
  std::fputs(analysis::render_table({"Threshold", "All peers #", "All peers %",
                                     "Noisy excluded #", "Noisy excluded %"},
                                    rows)
                 .c_str(),
             stdout);

  const auto& first = sweep_clean.front();
  const auto& last = sweep_clean.back();
  std::printf("Survival at 3h vs 90min (noisy excluded): %.1f%% (paper: 31.4%% — 108 -> 34)\n",
              100.0 * last.outbreaks / std::max(1, first.outbreaks));
  bool uptick = false;
  for (std::size_t i = 1; i < sweep_clean.size(); ++i)
    if (sweep_clean[i].outbreaks > sweep_clean[i - 1].outbreaks &&
        sweep_clean[i].threshold >= 160 * netbase::kMinute)
      uptick = true;
  std::printf("Resurrection uptick after 160 min: %s (paper: present — common subpath\n"
              "'4637 1299 25091 8298 210312')\n",
              uptick ? "PRESENT" : "absent");
}

void BM_ThresholdSweep(benchmark::State& state) {
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  for (auto _ : state) {
    auto sweep = detector.sweep(g_out.updates, g_out.events, g_thresholds);
    benchmark::DoNotOptimize(sweep.size());
  }
}
BENCHMARK(BM_ThresholdSweep)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// topology/topology.hpp — AS-level Internet topology with business
// relationships.
//
// The simulator routes over a Gao–Rexford topology: each inter-AS link
// is either customer→provider or peer↔peer, and export policy is
// valley-free. The generator produces a three-tier hierarchy (Tier-1
// clique, mid-tier providers, stubs) so that concepts the paper leans
// on — customer cones ("AS4637 ... ~6000 ASes in its customer cone"),
// dominant transit ASes, path hunting through backup routes — have
// faithful analogues.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "netbase/rng.hpp"

namespace zombiescope::topology {

/// Relationship of a link from the perspective of the first AS.
enum class Relationship : std::uint8_t {
  kProvider = 0,  // the other AS is my provider (I am its customer)
  kCustomer = 1,  // the other AS is my customer
  kPeer = 2,      // settlement-free peer
};

std::string to_string(Relationship rel);

/// Flips perspective: my provider is their customer.
Relationship reverse(Relationship rel);

struct AsInfo {
  bgp::Asn asn = 0;
  int tier = 3;       // 1 = Tier-1 clique, 2 = transit, 3 = stub/edge
  std::string name;   // optional human-readable label
};

class Topology {
 public:
  /// Adds an AS. Throws std::invalid_argument on duplicates.
  void add_as(const AsInfo& info);

  /// Adds a link; `rel` is from `from`'s perspective (kCustomer means
  /// `to` is `from`'s customer). Both ASes must exist; duplicate links
  /// and self-links are rejected.
  void add_link(bgp::Asn from, bgp::Asn to, Relationship rel);

  bool has_as(bgp::Asn asn) const { return as_index_.contains(asn); }
  const AsInfo& info(bgp::Asn asn) const;

  /// Neighbors of `asn` with the relationship from `asn`'s perspective.
  const std::vector<std::pair<bgp::Asn, Relationship>>& neighbors(bgp::Asn asn) const;

  /// Relationship of `to` from `from`'s perspective, if linked.
  std::optional<Relationship> relationship(bgp::Asn from, bgp::Asn to) const;

  std::vector<bgp::Asn> all_asns() const;
  std::size_t as_count() const { return infos_.size(); }
  std::size_t link_count() const { return link_count_; }

  /// The customer cone of `asn`: all ASes reachable by repeatedly
  /// following provider→customer edges, excluding `asn` itself.
  std::set<bgp::Asn> customer_cone(bgp::Asn asn) const;

  /// Directly connected networks (the paper's beacons were announced
  /// "to more than 1,700 directly connected networks").
  std::size_t degree(bgp::Asn asn) const { return neighbors(asn).size(); }

 private:
  std::map<bgp::Asn, std::size_t> as_index_;
  std::vector<AsInfo> infos_;
  std::vector<std::vector<std::pair<bgp::Asn, Relationship>>> adjacency_;
  std::size_t link_count_ = 0;
};

/// Parameters for the hierarchical generator.
struct GeneratorParams {
  int tier1_count = 8;          // fully meshed clique of Tier-1s
  int tier2_count = 60;         // regional transit providers
  int tier3_count = 400;        // stubs / edge networks
  int tier2_providers_min = 1;  // Tier-1 uplinks per Tier-2
  int tier2_providers_max = 3;
  int tier3_providers_min = 1;  // Tier-2 uplinks per stub
  int tier3_providers_max = 2;
  double tier2_peering_probability = 0.08;  // lateral Tier-2 peering
  double tier3_multihome_tier1_probability = 0.02;
  bgp::Asn first_asn = 1000;
};

/// Generates a deterministic hierarchical topology. The same seed
/// always yields the same graph.
Topology generate_hierarchical(const GeneratorParams& params, netbase::Rng& rng);

}  // namespace zombiescope::topology

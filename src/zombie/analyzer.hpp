// zombie/analyzer.hpp — outbreak statistics behind the paper's
// figures: zombie emergence rates per ⟨beacon, peerAS⟩ (Fig. 5),
// AS-path length populations (Fig. 6), and concurrent outbreak counts
// (Fig. 7), plus the path-difference percentages quoted in App. B.2.

#pragma once

#include <span>
#include <vector>

#include "zombie/interval_detector.hpp"
#include "zombie/types.hpp"

namespace zombiescope::zombie {

/// Zombie emergence rate of one ⟨beacon, peerAS⟩ pair: the fraction of
/// the beacon's announcements (intervals where the peer AS saw the
/// beacon) that left a zombie route at that peer AS.
struct EmergenceRate {
  netbase::Prefix beacon;
  bgp::Asn peer_asn = 0;
  int zombies = 0;
  int announcements = 0;
  double rate() const {
    return announcements == 0 ? 0.0 : static_cast<double>(zombies) / announcements;
  }
};

/// Fig. 5 input. `deduplicated` selects which route population counts
/// (with vs without the Aggregator filter).
std::vector<EmergenceRate> emergence_rates(const IntervalDetectionResult& result,
                                           netbase::AddressFamily family,
                                           bool deduplicated);

/// Fig. 6 populations of AS-path lengths.
struct PathLengthPopulations {
  std::vector<int> normal_at_normal_peers;  // withdrew in time
  std::vector<int> normal_at_zombie_peers;  // became zombies
  std::vector<int> zombie_paths;            // the stuck paths
  /// Share of zombie routes whose stuck path differs from the path the
  /// peer held before the withdrawal (App. B.2: 96.1 % for IPv4...).
  double changed_path_fraction = 0.0;
};

PathLengthPopulations path_length_populations(const IntervalDetectionResult& result,
                                              netbase::AddressFamily family,
                                              bool deduplicated);

/// Fig. 7: for each outbreak, the number of outbreaks that share its
/// interval (concurrency), per address family.
std::vector<int> concurrent_outbreaks(std::span<const ZombieOutbreak> outbreaks,
                                      netbase::AddressFamily family);

}  // namespace zombiescope::zombie

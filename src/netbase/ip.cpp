#include "netbase/ip.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace zombiescope::netbase {

namespace {

// FNV-1a over a byte range; good enough for hash-map keys.
std::size_t fnv1a(const std::uint8_t* data, std::size_t n, std::size_t seed) {
  std::size_t h = seed ^ 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::optional<int> parse_decimal(std::string_view text, int max_value) {
  if (text.empty() || text.size() > 3) return std::nullopt;
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  // Reject leading zeros like "01" (ambiguous octal in some parsers).
  if (text.size() > 1 && text.front() == '0') return std::nullopt;
  if (value > max_value) return std::nullopt;
  return value;
}

std::optional<std::array<std::uint8_t, 4>> parse_v4_bytes(std::string_view text) {
  std::array<std::uint8_t, 4> out{};
  int part = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      if (part >= 4) return std::nullopt;
      auto value = parse_decimal(text.substr(start, i - start), 255);
      if (!value) return std::nullopt;
      out[static_cast<std::size_t>(part++)] = static_cast<std::uint8_t>(*value);
      start = i + 1;
    }
  }
  if (part != 4) return std::nullopt;
  return out;
}

std::optional<int> parse_hextet(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  int value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return std::nullopt;
    value = value * 16 + digit;
  }
  return value;
}

std::optional<std::array<std::uint8_t, 16>> parse_v6_bytes(std::string_view text) {
  // Split on "::" first; each side is a list of hextets, and the right
  // side may end with an embedded IPv4 dotted quad.
  std::size_t gap = text.find("::");
  std::string_view left = (gap == std::string_view::npos) ? text : text.substr(0, gap);
  std::string_view right =
      (gap == std::string_view::npos) ? std::string_view{} : text.substr(gap + 2);
  if (gap != std::string_view::npos && right.find("::") != std::string_view::npos)
    return std::nullopt;  // more than one "::"

  auto split_groups = [](std::string_view s) -> std::optional<std::vector<std::string_view>> {
    std::vector<std::string_view> groups;
    if (s.empty()) return groups;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == ':') {
        if (i == start) return std::nullopt;  // empty group, e.g. ":::" or leading ":"
        groups.push_back(s.substr(start, i - start));
        start = i + 1;
      }
    }
    return groups;
  };

  auto left_groups = split_groups(left);
  auto right_groups = split_groups(right);
  if (!left_groups || !right_groups) return std::nullopt;

  // Expand a possible trailing embedded IPv4 address into two hextets.
  std::vector<int> head;
  std::vector<int> tail;
  auto expand = [](const std::vector<std::string_view>& groups,
                   std::vector<int>& out) -> bool {
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].find('.') != std::string_view::npos) {
        if (i + 1 != groups.size()) return false;  // v4 part must be last
        auto v4 = parse_v4_bytes(groups[i]);
        if (!v4) return false;
        out.push_back(((*v4)[0] << 8) | (*v4)[1]);
        out.push_back(((*v4)[2] << 8) | (*v4)[3]);
      } else {
        auto h = parse_hextet(groups[i]);
        if (!h) return false;
        out.push_back(*h);
      }
    }
    return true;
  };
  if (!expand(*left_groups, head)) return std::nullopt;
  if (!expand(*right_groups, tail)) return std::nullopt;

  std::size_t total = head.size() + tail.size();
  if (gap == std::string_view::npos) {
    if (total != 8) return std::nullopt;
  } else {
    if (total > 7) return std::nullopt;  // "::" must compress >= 1 group
  }

  std::array<std::uint8_t, 16> bytes{};
  std::size_t pos = 0;
  for (int h : head) {
    bytes[pos++] = static_cast<std::uint8_t>(h >> 8);
    bytes[pos++] = static_cast<std::uint8_t>(h & 0xff);
  }
  pos = 16 - tail.size() * 2;
  for (int h : tail) {
    bytes[pos++] = static_cast<std::uint8_t>(h >> 8);
    bytes[pos++] = static_cast<std::uint8_t>(h & 0xff);
  }
  return bytes;
}

}  // namespace

std::string_view to_string(AddressFamily family) {
  return family == AddressFamily::kIpv4 ? "IPv4" : "IPv6";
}

IpAddress IpAddress::v4(std::array<std::uint8_t, 4> bytes) {
  IpAddress a;
  a.family_ = AddressFamily::kIpv4;
  std::copy(bytes.begin(), bytes.end(), a.bytes_.begin());
  return a;
}

IpAddress IpAddress::v4(std::uint32_t host_order) {
  return v4({static_cast<std::uint8_t>(host_order >> 24),
             static_cast<std::uint8_t>(host_order >> 16),
             static_cast<std::uint8_t>(host_order >> 8),
             static_cast<std::uint8_t>(host_order)});
}

IpAddress IpAddress::v6(const std::array<std::uint8_t, 16>& bytes) {
  IpAddress a;
  a.family_ = AddressFamily::kIpv6;
  a.bytes_ = bytes;
  return a;
}

IpAddress IpAddress::v6(const std::array<std::uint16_t, 8>& hextets) {
  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i * 2] = static_cast<std::uint8_t>(hextets[i] >> 8);
    bytes[i * 2 + 1] = static_cast<std::uint8_t>(hextets[i] & 0xff);
  }
  return v6(bytes);
}

std::optional<IpAddress> IpAddress::try_parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    auto bytes = parse_v6_bytes(text);
    if (!bytes) return std::nullopt;
    return v6(*bytes);
  }
  auto bytes = parse_v4_bytes(text);
  if (!bytes) return std::nullopt;
  return v4(*bytes);
}

IpAddress IpAddress::parse(std::string_view text) {
  auto a = try_parse(text);
  if (!a) throw std::invalid_argument("invalid IP address: " + std::string(text));
  return *a;
}

bool IpAddress::bit(int index) const {
  const auto byte = static_cast<std::size_t>(index / 8);
  const int shift = 7 - (index % 8);
  return (bytes_[byte] >> shift) & 1;
}

std::uint32_t IpAddress::v4_value() const {
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) |
         static_cast<std::uint32_t>(bytes_[3]);
}

bool IpAddress::is_unspecified() const {
  return std::all_of(bytes_.begin(), bytes_.end(), [](std::uint8_t b) { return b == 0; });
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1], bytes_[2], bytes_[3]);
    return buf;
  }
  // RFC 5952: compress the longest run of zero hextets (>= 2), leftmost
  // on ties; lowercase hex without leading zeros.
  std::array<std::uint16_t, 8> hextets;
  for (std::size_t i = 0; i < 8; ++i)
    hextets[i] = static_cast<std::uint16_t>((bytes_[i * 2] << 8) | bytes_[i * 2 + 1]);

  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (hextets[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && hextets[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", hextets[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  return out;
}

Prefix::Prefix(const IpAddress& address, int length) : address_(address), length_(length) {
  if (length < 0 || length > address.bit_length())
    throw std::invalid_argument("prefix length out of range");
  // Zero the host bits so equal prefixes compare equal.
  auto bytes = address.bytes();
  for (int bit = length; bit < address.bit_length(); ++bit) {
    const auto byte = static_cast<std::size_t>(bit / 8);
    bytes[byte] = static_cast<std::uint8_t>(bytes[byte] & ~(1u << (7 - bit % 8)));
  }
  address_ = address.is_v4()
                 ? IpAddress::v4({bytes[0], bytes[1], bytes[2], bytes[3]})
                 : IpAddress::v6(bytes);
}

std::optional<Prefix> Prefix::try_parse(std::string_view text) {
  std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto address = IpAddress::try_parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  int length = 0;
  auto [ptr, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) return std::nullopt;
  if (length < 0 || length > address->bit_length()) return std::nullopt;
  return Prefix(*address, length);
}

Prefix Prefix::parse(std::string_view text) {
  auto p = try_parse(text);
  if (!p) throw std::invalid_argument("invalid prefix: " + std::string(text));
  return *p;
}

bool Prefix::contains(const IpAddress& address) const {
  if (address.family() != address_.family()) return false;
  for (int bit = 0; bit < length_; ++bit)
    if (address.bit(bit) != address_.bit(bit)) return false;
  return true;
}

bool Prefix::covers(const Prefix& other) const {
  return other.family() == family() && other.length() >= length_ &&
         contains(other.address());
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace zombiescope::netbase

std::size_t std::hash<zombiescope::netbase::IpAddress>::operator()(
    const zombiescope::netbase::IpAddress& a) const noexcept {
  return zombiescope::netbase::fnv1a(
      a.bytes().data(), a.bytes().size(),
      static_cast<std::size_t>(a.family()));
}

std::size_t std::hash<zombiescope::netbase::Prefix>::operator()(
    const zombiescope::netbase::Prefix& p) const noexcept {
  return zombiescope::netbase::fnv1a(
      p.address().bytes().data(), p.address().bytes().size(),
      (static_cast<std::size_t>(p.family()) << 8) ^
          static_cast<std::size_t>(p.length()));
}

// Tests for obs/prof — the zsprof sampling profiler.
//
// Timing-sensitive assertions here are deliberately loose: the suite
// runs under sanitizers and on loaded single-core CI boxes. The hard
// ≤5% overhead acceptance bound is checked on micro_hotpaths by
// scripts/check_bench_regression.sh, not by unit-test wall clocks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace obs = zombiescope::obs;

namespace {

/// Spins the CPU until roughly `ms` of wall time has passed, returning
/// a value the optimizer cannot discard.
std::uint64_t spin_for_ms(int ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 10000; ++i) acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  }
  return acc;
}

TEST(ObsProf, StartStopProducesSamples) {
  if constexpr (!obs::kProfCompiledIn) GTEST_SKIP() << "profiler compiled out";
  obs::Profiler& profiler = obs::Profiler::global();
  ASSERT_TRUE(profiler.start());
  EXPECT_TRUE(profiler.running());
  volatile std::uint64_t sink = spin_for_ms(400);
  (void)sink;
  const obs::ProfileReport report = profiler.stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_TRUE(report.valid);
  EXPECT_EQ(report.rate_hz, 97);
  EXPECT_GT(report.duration_s, 0.0);
  // 400ms of pure spinning at 97 Hz of CPU time is ~38 expirations;
  // require a handful so a heavily loaded box still passes.
  EXPECT_GE(report.samples, 5u);
  EXPECT_FALSE(report.folded.empty());
}

TEST(ObsProf, SessionStartedMidSpanStillSamples) {
  if constexpr (!obs::kProfCompiledIn) GTEST_SKIP() << "profiler compiled out";
  // The GET /profile shape: the session starts on one thread while the
  // worker is already deep inside spans it opened long before. The
  // worker must still get a sample ring (it registered at span open);
  // its samples are span-less until it opens a fresh span.
  std::atomic<bool> span_open{false};
  std::atomic<bool> quit{false};
  std::atomic<std::uint64_t> sink{0};
  std::thread worker([&] {
    obs::ScopedSpan span("proftest.pre_session_busy");
    span_open.store(true);
    while (!quit.load(std::memory_order_relaxed)) sink += spin_for_ms(10);
  });
  while (!span_open.load()) std::this_thread::yield();

  obs::Profiler& profiler = obs::Profiler::global();
  ASSERT_TRUE(profiler.start());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const obs::ProfileReport report = profiler.stop();
  quit.store(true);
  worker.join();

  ASSERT_TRUE(report.valid);
  EXPECT_GE(report.samples, 5u)
      << "a session started mid-span captured nothing; folded:\n"
      << report.to_folded();
}

TEST(ObsProf, StartWhileRunningFails) {
  if constexpr (!obs::kProfCompiledIn) GTEST_SKIP() << "profiler compiled out";
  obs::Profiler& profiler = obs::Profiler::global();
  ASSERT_TRUE(profiler.start());
  EXPECT_FALSE(profiler.start());
  (void)profiler.stop();
  // A fresh session works after stop().
  ASSERT_TRUE(profiler.start());
  (void)profiler.stop();
}

TEST(ObsProf, StopWithoutStartIsInvalid) {
  const obs::ProfileReport report = obs::Profiler::global().stop();
  EXPECT_FALSE(report.valid);
  EXPECT_EQ(report.samples, 0u);
}

TEST(ObsProf, SamplesAttributeToActiveSpan) {
  if constexpr (!obs::kProfCompiledIn) GTEST_SKIP() << "profiler compiled out";
  obs::Profiler& profiler = obs::Profiler::global();
  ASSERT_TRUE(profiler.start());
  {
    obs::ScopedSpan span("proftest.phase_a");
    volatile std::uint64_t sink = spin_for_ms(500);
    (void)sink;
  }
  const obs::ProfileReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  ASSERT_GE(report.samples, 3u);
  // The dominant phase must be the span that was active while
  // spinning; folded stacks must carry it as the root component.
  ASSERT_TRUE(report.phase_samples.contains("proftest.phase_a"))
      << report.top_report();
  std::uint64_t in_phase = 0;
  for (const auto& [stack, count] : report.folded)
    if (stack.rfind("proftest.phase_a", 0) == 0) in_phase += count;
  EXPECT_GT(in_phase, 0u);
}

TEST(ObsProf, ConcurrentThreadsAttributeToTheirOwnSpans) {
  if constexpr (!obs::kProfCompiledIn) GTEST_SKIP() << "profiler compiled out";
  obs::Profiler& profiler = obs::Profiler::global();
  ASSERT_TRUE(profiler.start());
  std::atomic<bool> stop{false};
  auto worker = [&stop](const char* span_name) {
    obs::ScopedSpan span(span_name);
    std::uint64_t acc = 1;
    while (!stop.load(std::memory_order_relaxed))
      for (int i = 0; i < 10000; ++i) acc = acc * 2862933555777941757ull + 3037000493ull;
    return acc;
  };
  std::thread t1([&] { (void)worker("proftest.thread_one"); });
  std::thread t2([&] { (void)worker("proftest.thread_two"); });
  volatile std::uint64_t sink = spin_for_ms(800);
  (void)sink;
  stop.store(true, std::memory_order_relaxed);
  t1.join();
  t2.join();
  const obs::ProfileReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  // On a single core the scheduler decides who gets the CPU-time
  // expirations; with 800ms of three spinning threads both workers
  // should still be hit at least once.
  EXPECT_TRUE(report.phase_samples.contains("proftest.thread_one"));
  EXPECT_TRUE(report.phase_samples.contains("proftest.thread_two"));
  // No cross-talk: a stack attributed to thread_one never also claims
  // thread_two (span stacks are per-thread).
  for (const auto& [stack, count] : report.folded) {
    (void)count;
    const bool one = stack.find("proftest.thread_one") != std::string::npos;
    const bool two = stack.find("proftest.thread_two") != std::string::npos;
    EXPECT_FALSE(one && two) << stack;
  }
}

TEST(ObsProf, SessionAccountingIsConsistent) {
  if constexpr (!obs::kProfCompiledIn) GTEST_SKIP() << "profiler compiled out";
  obs::Profiler& profiler = obs::Profiler::global();
  ASSERT_TRUE(profiler.start());
  volatile std::uint64_t sink = spin_for_ms(300);
  (void)sink;
  const obs::ProfileReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  std::uint64_t folded_total = 0;
  for (const auto& [stack, count] : report.folded) {
    (void)stack;
    folded_total += count;
  }
  std::uint64_t phase_total = 0;
  for (const auto& [phase, count] : report.phase_samples) {
    (void)phase;
    phase_total += count;
  }
  // Every captured sample lands in exactly one folded stack and one
  // phase bucket.
  EXPECT_EQ(folded_total, report.samples);
  EXPECT_EQ(phase_total, report.samples);
}

TEST(ObsProf, FoldedRoundTrip) {
  obs::ProfileReport report;
  report.valid = true;
  report.folded["main;run;hot_loop"] = 42;
  report.folded["main;run;cold_path"] = 1;
  report.folded["(no span);idle"] = 7;
  const std::string text = report.to_folded();
  const auto parsed = obs::parse_folded(text);
  EXPECT_EQ(parsed, report.folded);
}

TEST(ObsProf, ParseFoldedSkipsMalformedLines) {
  const auto parsed = obs::parse_folded(
      "ok;stack 10\n"
      "no trailing count\n"
      "count not numeric x\n"
      "\n"
      "another;ok 3\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at("ok;stack"), 10u);
  EXPECT_EQ(parsed.at("another;ok"), 3u);
}

TEST(ObsProf, ReportJsonShape) {
  obs::ProfileReport report;
  report.valid = true;
  report.rate_hz = 97;
  report.duration_s = 1.5;
  report.samples = 50;
  report.phase_samples["detector.pass"] = 40;
  report.phase_samples["(no span)"] = 10;
  report.top_frames.push_back({"hot_function()", 30, 45});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"zsprof-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rate_hz\": 97"), std::string::npos);
  EXPECT_NE(json.find("\"detector.pass\""), std::string::npos);
  EXPECT_NE(json.find("\"hot_function()\""), std::string::npos);
  // Shares sum to 1 over the phases: 0.8 and 0.2.
  EXPECT_NE(json.find("0.8"), std::string::npos);
  EXPECT_NE(json.find("0.2"), std::string::npos);
}

TEST(ObsProf, ProfilerOffCostsNothingMeasurable) {
  // With no session running the span hooks reduce to one relaxed
  // atomic load. This is a smoke check that tracing while idle does
  // not explode, not a benchmark (that lives in micro_hotpaths).
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedSpan span("proftest.idle");
    EXPECT_FALSE(obs::prof_attribution_active());
  }
}

}  // namespace

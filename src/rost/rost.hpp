// rost/rost.hpp — Route Status Transparency (RoST).
//
// The paper's related work (Anahory et al., NSDI 2025) proposes the
// countermeasure to BGP zombies: origins publish the status of their
// routes to a public transparency repository, and participating ASes
// periodically verify the routes in their RIBs against it, evicting
// routes whose withdrawal was suppressed somewhere upstream. This
// module implements that design over the simulator: a TransparencyLog
// the beacon origin publishes to, and a RostAuditor that enrolls ASes
// and audits their RIBs on a fixed cadence. The companion ablation
// bench quantifies how deployment fraction shortens zombie lifetimes.

#pragma once

#include <map>
#include <set>
#include <span>
#include <vector>

#include "beacon/schedule.hpp"
#include "simnet/simulation.hpp"

namespace zombiescope::rost {

/// Route status as recorded in the transparency repository.
enum class RouteStatus {
  kUnknown,    // never published
  kAnnounced,  // latest publication is an announcement
  kWithdrawn,  // latest publication is a withdrawal
};

/// The public, append-only status repository. Origins publish; anyone
/// queries. Queries see publications with a configurable distribution
/// delay (repositories synchronize asynchronously).
class TransparencyLog {
 public:
  explicit TransparencyLog(netbase::Duration visibility_delay = 0)
      : visibility_delay_(visibility_delay) {}

  void publish_announce(const netbase::Prefix& prefix, bgp::Asn origin,
                        netbase::TimePoint at);
  void publish_withdraw(const netbase::Prefix& prefix, bgp::Asn origin,
                        netbase::TimePoint at);

  /// The status of ⟨prefix, origin⟩ as visible at `at`.
  RouteStatus status(const netbase::Prefix& prefix, bgp::Asn origin,
                     netbase::TimePoint at) const;

  std::size_t publication_count() const { return publications_; }

 private:
  struct Entry {
    netbase::TimePoint at;
    bool announced;
  };
  std::map<std::pair<netbase::Prefix, bgp::Asn>, std::vector<Entry>> log_;
  netbase::Duration visibility_delay_;
  std::size_t publications_ = 0;
};

/// Publishes a beacon schedule into the log (what a RoST-enabled
/// origin would do alongside its BGP actions).
void publish_events(TransparencyLog& log, bgp::Asn origin,
                    std::span<const beacon::BeaconEvent> events);

struct RostConfig {
  /// How often enrolled ASes audit their RIBs.
  netbase::Duration check_interval = 30 * netbase::kMinute;
};

/// The verification agent: enrolled ASes periodically compare each
/// installed route's ⟨prefix, origin⟩ against the log and evict routes
/// whose status is Withdrawn.
class RostAuditor {
 public:
  RostAuditor(simnet::Simulation& sim, const TransparencyLog& log, RostConfig config = {})
      : sim_(sim), log_(log), config_(config) {}

  /// Enrolls an AS in RoST verification.
  void enroll(bgp::Asn asn) { enrolled_.insert(asn); }
  const std::set<bgp::Asn>& enrolled() const { return enrolled_; }

  /// Schedules audits every check_interval in [start, end].
  void schedule(netbase::TimePoint start, netbase::TimePoint end);

  /// Runs one audit pass immediately (must be inside the event loop).
  void audit_now();

  /// Total stale routes evicted across all audits.
  int evictions() const { return evictions_; }

 private:
  simnet::Simulation& sim_;
  const TransparencyLog& log_;
  RostConfig config_;
  std::set<bgp::Asn> enrolled_;
  int evictions_ = 0;
};

}  // namespace zombiescope::rost

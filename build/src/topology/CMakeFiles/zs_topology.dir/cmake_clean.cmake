file(REMOVE_RECURSE
  "CMakeFiles/zs_topology.dir/topology.cpp.o"
  "CMakeFiles/zs_topology.dir/topology.cpp.o.d"
  "libzs_topology.a"
  "libzs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "zombie/interval_detector.hpp"

#include <algorithm>
#include <map>

#include "beacon/clock.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "zombie/detector_metrics.hpp"

namespace zombiescope::zombie {

namespace {

using netbase::TimePoint;

/// Per-interval, per-peer, per-prefix fold of the last update before
/// the check time, with no state carried across intervals (§3.1).
struct LastUpdate {
  bool announced = false;       // last message type
  bool seen_announce = false;   // any announcement inside [A, check)
  bgp::AsPath path;
  std::optional<bgp::Aggregator> aggregator;
  TimePoint at = 0;
  /// State at the beacon's withdrawal instant (the "normal" route).
  bool normal_present = false;
  bgp::AsPath normal_path;
};

}  // namespace

IntervalDetectionResult IntervalZombieDetector::detect(
    std::span<const mrt::MrtRecord> records,
    std::span<const beacon::BeaconEvent> events) const {
  obs::ScopedSpan span("zombie.detect.interval");
  internal::PassTimer timer;
  internal::DetectorMetrics& metrics = internal::detector_metrics();
  metrics.records_scanned.inc(records.size());
  IntervalDetectionResult result;

  // Index events by announce time; intervals inherit the RIS period.
  std::vector<beacon::BeaconEvent> sorted(events.begin(), events.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.announce_time < b.announce_time; });
  if (sorted.empty()) return result;

  // Group events that share an announce time into one interval.
  struct Interval {
    TimePoint start;
    TimePoint end;  // next announce time (exclusive)
    std::vector<beacon::BeaconEvent> beacons;
  };
  std::vector<Interval> intervals;
  for (const auto& event : sorted) {
    if (intervals.empty() || intervals.back().start != event.announce_time)
      intervals.push_back({event.announce_time, 0, {}});
    intervals.back().beacons.push_back(event);
  }
  for (std::size_t i = 0; i < intervals.size(); ++i)
    intervals[i].end = i + 1 < intervals.size()
                           ? intervals[i + 1].start
                           : intervals[i].start + beacon::RisBeaconSchedule::kPeriod;

  // Single chronological sweep: records and intervals are both sorted.
  std::size_t cursor = 0;
  for (const auto& interval : intervals) {
    // Skip records before this interval (already consumed by earlier
    // intervals; the paper's per-interval independence means records
    // before the announcement are deliberately ignored).
    while (cursor < records.size() &&
           mrt::record_timestamp(records[cursor]) < interval.start)
      ++cursor;

    // Collect the interval's messages for the beacons of interest.
    std::map<netbase::Prefix, std::map<PeerKey, LastUpdate>> table;
    std::map<netbase::Prefix, const beacon::BeaconEvent*> beacon_of;
    TimePoint max_check = 0;
    for (const auto& event : interval.beacons) {
      beacon_of[event.prefix] = &event;
      max_check = std::max(max_check, event.withdraw_time + config_.threshold);
    }

    std::size_t scan = cursor;
    while (scan < records.size()) {
      const auto& record = records[scan];
      const TimePoint t = mrt::record_timestamp(record);
      if (t >= interval.end || t > max_check) break;
      ++scan;
      if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record)) {
        const PeerKey peer{msg->peer_asn, msg->peer_address};
        if (peer_excluded(peer)) continue;
        for (const auto& prefix : msg->update.withdrawn) {
          auto it = beacon_of.find(prefix);
          if (it == beacon_of.end() || t > it->second->withdraw_time + config_.threshold)
            continue;
          LastUpdate& last = table[prefix][peer];
          if (t <= it->second->withdraw_time) last.normal_present = false;
          last.announced = false;
          last.at = t;
        }
        for (const auto& prefix : msg->update.announced) {
          auto it = beacon_of.find(prefix);
          if (it == beacon_of.end() || t > it->second->withdraw_time + config_.threshold)
            continue;
          LastUpdate& last = table[prefix][peer];
          last.announced = true;
          last.seen_announce = true;
          last.path = msg->update.attributes.as_path;
          last.aggregator = msg->update.attributes.aggregator;
          last.at = t;
          if (t <= it->second->withdraw_time) {
            last.normal_present = true;
            last.normal_path = last.path;
          }
        }
      } else if (const auto* state = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
        // A session leaving Established removes the peer's routes.
        if (state->old_state == bgp::SessionState::kEstablished &&
            state->new_state != bgp::SessionState::kEstablished) {
          const PeerKey peer{state->peer_asn, state->peer_address};
          for (auto& [prefix, peers] : table) {
            auto it = peers.find(peer);
            if (it == peers.end()) continue;
            if (it->second.announced) {
              it->second.announced = false;
              it->second.at = state->timestamp;
            }
            auto beacon_it = beacon_of.find(prefix);
            if (beacon_it != beacon_of.end() &&
                state->timestamp <= beacon_it->second->withdraw_time)
              it->second.normal_present = false;
          }
        }
      }
    }

    // Evaluate each beacon of the interval.
    for (const auto& event : interval.beacons) {
      auto table_it = table.find(event.prefix);
      if (table_it == table.end()) continue;

      IntervalDetectionResult::Visibility vis;
      vis.prefix = event.prefix;
      vis.interval_start = interval.start;

      ZombieOutbreak outbreak;
      outbreak.prefix = event.prefix;
      outbreak.interval_start = interval.start;
      outbreak.withdraw_time = event.withdraw_time;
      ZombieOutbreak deduped = outbreak;

      metrics.candidates.inc(table_it->second.size());
      for (const auto& [peer, last] : table_it->second) {
        if (last.seen_announce) vis.announcing_asns.insert(peer.asn);

        IntervalDetectionResult::PathObservation obs;
        obs.prefix = event.prefix;
        obs.interval_start = interval.start;
        obs.peer = peer;
        if (last.normal_present) obs.normal_path = last.normal_path;

        if (!last.announced) {  // withdrawn (or flushed) in time
          if (obs.normal_path.has_value()) result.observations.push_back(std::move(obs));
          continue;
        }

        ZombieRoute route;
        route.peer = peer;
        route.prefix = event.prefix;
        route.interval_start = interval.start;
        route.withdraw_time = event.withdraw_time;
        route.path = last.path;
        if (last.aggregator.has_value())
          route.aggregator_time = beacon::decode_aggregator_clock(
              last.aggregator->address, last.at);
        // Revised methodology: a stuck announcement whose clock
        // predates this interval's announcement was already counted.
        route.duplicate =
            route.aggregator_time.has_value() && *route.aggregator_time < interval.start;

        obs.zombie_path = route.path;
        obs.duplicate = route.duplicate;
        result.observations.push_back(std::move(obs));

        obs::Journal& journal = obs::Journal::global();
        if (journal.enabled(obs::kCatDetector)) {
          obs::JournalEvent ev;
          ev.time = event.withdraw_time + config_.threshold;
          ev.has_prefix = true;
          ev.prefix = event.prefix;
          ev.has_peer = true;
          ev.peer_asn = peer.asn;
          ev.peer_address = peer.address;
          ev.a = config_.threshold;
          ev.b = event.withdraw_time;
          ev.c = interval.start;
          ev.type = obs::JournalEventType::kThresholdCrossed;
          journal.emit<obs::kCatDetector>(ev);
          if (route.duplicate) {
            ev.type = obs::JournalEventType::kDuplicateSuppressed;
            ev.a = *route.aggregator_time;
            ev.b = interval.start;
            ev.c = 0;
          } else {
            ev.type = obs::JournalEventType::kZombieDeclared;
          }
          journal.emit<obs::kCatDetector>(ev);
        }

        outbreak.routes.push_back(route);
        if (!route.duplicate) deduped.routes.push_back(route);
        result.routes.push_back(std::move(route));
      }

      if (!vis.announcing_asns.empty()) {
        ++result.visible_prefixes;
        result.visibility.push_back(std::move(vis));
      }
      if (!outbreak.routes.empty())
        result.outbreaks_with_duplicates.push_back(std::move(outbreak));
      if (!deduped.routes.empty())
        result.outbreaks_deduplicated.push_back(std::move(deduped));
    }

    cursor = scan;
  }

  metrics.outbreaks.inc(result.outbreaks_deduplicated.size());
  metrics.routes.inc(result.routes.size());
  return result;
}

std::vector<ZombieOutbreak> filter_family(std::span<const ZombieOutbreak> outbreaks,
                                          netbase::AddressFamily family) {
  std::vector<ZombieOutbreak> out;
  for (const auto& outbreak : outbreaks)
    if (outbreak.prefix.family() == family) out.push_back(outbreak);
  return out;
}

}  // namespace zombiescope::zombie

// obs/prof.hpp — zsprof, the in-process sampling profiler.
//
// A dependency-free CPU profiler built on POSIX timer_create + SIGPROF
// (default ~97 Hz, a prime rate so sampling does not beat against
// periodic work). The signal handler walks the frame-pointer chain of
// the interrupted thread into a lock-free per-thread sample ring and
// copies the thread's active zsobs span stack alongside it, so every
// sample is *phase-attributed*: output stacks read
// `scenario:longlived2024;detector:interval;trie_lookup`, not just raw
// function frames. A background drain thread aggregates the rings;
// stop() symbolizes (dladdr + demangling, in normal context) and
// returns a ProfileReport that renders as
//
//   * folded-stack text (flamegraph.pl / speedscope ready),
//   * a self/total top-N table,
//   * the `profile` JSON section of the BENCH_*.json snapshots
//     (per-phase CPU shares + top frames).
//
// Signal-safety rules (see DESIGN.md §7): the handler touches only
// pre-registered thread state — no allocation, no locks, no dladdr; a
// thread with no registered state loses the sample to a counter. The
// frame-pointer walk is bounds-checked against the thread's stack
// segment so a corrupt chain can never fault. Builds default to
// -fno-omit-frame-pointer (ZS_PROF cmake option) so the walk sees real
// frames; compiling with ZS_PROF_ENABLED=0 removes every hook — like
// ZS_JOURNAL_CATEGORIES, disabled means zero code executed.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#ifndef ZS_PROF_ENABLED
#define ZS_PROF_ENABLED 1
#endif

namespace zombiescope::obs {

/// True when the profiler hooks are compiled in. Call sites guard with
/// `if constexpr (kProfCompiledIn)` so a ZS_PROF_ENABLED=0 build
/// executes exactly zero profiler code.
inline constexpr bool kProfCompiledIn = ZS_PROF_ENABLED != 0;

struct ProfilerOptions {
  /// Samples per second of *process CPU time* (idle costs nothing).
  int rate_hz = 97;
  /// Per-thread sample ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 4096;
};

/// One symbolized frame of the top-N table.
struct ProfiledFrame {
  std::string symbol;
  std::uint64_t self = 0;   // samples with this frame innermost
  std::uint64_t total = 0;  // samples with this frame anywhere on stack
};

/// Aggregated result of one profiling session.
struct ProfileReport {
  bool valid = false;  // false: profiler never ran (or compiled out)
  int rate_hz = 0;
  double duration_s = 0.0;  // wall time between start() and stop()
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;  // ring overflow + unregistered-thread hits

  /// Folded stacks: "span;span;frame;frame" (root first) -> samples.
  std::map<std::string, std::uint64_t> folded;
  /// Innermost active span ("(no span)" when none) -> samples.
  std::map<std::string, std::uint64_t> phase_samples;
  /// Symbol -> self/total sample counts, sorted by self descending.
  std::vector<ProfiledFrame> top_frames;

  /// Flamegraph-ready folded text: one "stack count" line per stack.
  std::string to_folded() const;
  /// Human-readable per-phase shares + top-N self/total table.
  std::string top_report(std::size_t n = 20) const;
  /// The "profile" section of BENCH_*.json: schema zsprof-v1 with
  /// per-phase CPU shares and the top frames.
  std::string to_json(std::size_t top_n = 20) const;
};

/// Parses folded text back to stack -> count (the to_folded inverse;
/// lines that do not end in " <count>" are skipped).
std::map<std::string, std::uint64_t> parse_folded(std::string_view text);

/// The process-wide sampling profiler. SIGPROF is a process-global
/// resource, so there is exactly one; start()/stop() are not
/// re-entrant but may be called from any thread.
class Profiler {
 public:
  /// The singleton every entry point (CLI --profile-out, the HTTP
  /// /profile endpoint, bench harness) shares.
  static Profiler& global();

  /// Installs the SIGPROF handler and arms the CPU-time timer.
  /// Returns false if already running, compiled out, or the timer
  /// cannot be created.
  bool start(const ProfilerOptions& options = {});

  /// Disarms the timer, drains every ring, symbolizes, and returns the
  /// aggregated report. Returns an invalid report when not running.
  ProfileReport stop();

  bool running() const;
  /// Samples captured so far in the active session (approximate).
  std::uint64_t samples_captured() const;

 private:
  Profiler() = default;
};

/// The --profile-out CLI helper: starts a global profiling session on
/// construction (when `path` is non-empty and the profiler is
/// available), and on destruction stops it, writes the folded stacks
/// to `path`, and prints the top-frames summary to stderr. Does
/// nothing at all for an empty path.
class ScopedProfileSession {
 public:
  explicit ScopedProfileSession(std::string path);
  ~ScopedProfileSession();
  ScopedProfileSession(const ScopedProfileSession&) = delete;
  ScopedProfileSession& operator=(const ScopedProfileSession&) = delete;

  bool active() const { return active_; }

 private:
  std::string path_;
  bool active_ = false;
};

// --- span-attribution hooks (used by obs/trace.cpp) -----------------
//
// ScopedSpan pushes its interned name while the profiler is active so
// the SIGPROF handler can read the span stack signal-safely. All of
// this is a no-op when no profiler runs, and compiles away entirely
// when ZS_PROF_ENABLED=0 (call sites guard with kProfCompiledIn).

#if ZS_PROF_ENABLED
/// One relaxed atomic load: should spans register with the profiler?
bool prof_attribution_active() noexcept;
/// Returns a pointer that stays valid forever (names are interned).
const char* prof_intern(std::string_view name);
/// Pushes/pops the calling thread's active-span stack.
void prof_push_span(const char* interned_name) noexcept;
void prof_pop_span() noexcept;
/// Puts the calling thread in the profiler's thread registry so a
/// session started later (e.g. via GET /profile mid-run) can sample
/// it. After the first call per thread this is one thread_local read.
void prof_register_thread() noexcept;
#else
inline bool prof_attribution_active() noexcept { return false; }
inline const char* prof_intern(std::string_view) { return nullptr; }
inline void prof_push_span(const char*) noexcept {}
inline void prof_pop_span() noexcept {}
inline void prof_register_thread() noexcept {}
#endif

}  // namespace zombiescope::obs

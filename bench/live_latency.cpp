// live_latency — end-to-end delivery latency of the zslive service:
// ingest stamp to SSE byte arriving back at a subscriber.
//
// Each configuration (shards x subscribers x pacing) boots a fresh
// LiveService with its HTTP server on an ephemeral port, attaches N
// LoopbackLatencyClient self-subscribers (live/loopback.hpp), replays
// the longlived2024 archive, and reports the "live.e2e" histogram
// delta for that run:
//
//   max pacing    every record as fast as the feed loop can push it.
//     The pipeline runs saturated, so e2e latency is dominated by
//     queueing — the worst-case number.
//   paced         records released on their own timestamps (sped up so
//     the months-long archive replays in ~31 s). The queues stay
//     near-empty, so this is the quiet-network floor: publish wakes
//     the serving loop through its self-pipe, so this is essentially
//     the socket round-trip (the old 25 ms poll floor is gone).
//
// Every subscriber records every transition event, so a run's sample
// count is transitions x subscribers. The per-config p50/p99 land in
// zs_bench_lat_* gauges, and the process-wide cumulative stage
// histograms land in the snapshot's "latency" section — the part
// zsbenchdiff --gate-latency gates on.
//
// With ZS_LATHIST_ENABLED=0 the subscribers still run (they are load)
// but no samples are recorded; the bench prints a notice and the
// snapshot carries no latency section.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "live/feed.hpp"
#include "live/loopback.hpp"
#include "live/service.hpp"
#include "obs/http.hpp"
#include "obs/lathist.hpp"
#include "obs/metrics.hpp"

using namespace zombiescope;

namespace {

// Simulated seconds per wall second for the paced runs. The archive
// spans ~6 months (the experiment window plus its long outage tails)
// and holds ~471k records, so this replays in ~31 s of wall clock at
// an average demand of ~15k records/s — far under even the 1-shard
// capacity (~111k/s, see BENCH_live_throughput.json). The queues stay
// near-empty, which is the point of the pacing axis; only the beacon
// bursts (identical-timestamp clusters, released at once) queue.
constexpr double kPacedSpeed = 500'000.0;

struct LatResult {
  obs::LatSnapshot e2e;
  obs::LatSnapshot queue_wait;
  obs::LatSnapshot fanout;
  double wall_s = 0.0;
};

obs::LatSnapshot stage_snapshot(const char* name) {
  if constexpr (obs::kLatHistCompiledIn)
    return obs::LatRegistry::global().get(name).snapshot();
  return {};
}

LatResult run_config(const scenarios::LongLived2024Output& data,
                     std::size_t shards, std::size_t subscribers,
                     double speed) {
  live::LiveConfig config;
  config.shards = shards;
  config.block_on_full = true;
  live::LiveService service(config);
  service.start();
  for (const auto& event : data.events) service.expect(event);

  obs::HttpServer http;
  service.attach_http(http);
  if (!http.start(0)) {
    std::fprintf(stderr, "error: cannot bind an ephemeral HTTP port\n");
    service.stop();
    return {};
  }
  std::vector<std::unique_ptr<live::LoopbackLatencyClient>> clients;
  for (std::size_t i = 0; i < subscribers; ++i) {
    auto client = std::make_unique<live::LoopbackLatencyClient>(http.port());
    if (client->start()) clients.push_back(std::move(client));
  }

  // The registry histograms are process-cumulative; diff around the
  // run so each configuration reports only its own samples.
  const obs::LatSnapshot e2e_before = stage_snapshot("live.e2e");
  const obs::LatSnapshot wait_before = stage_snapshot("live.queue_wait");
  const obs::LatSnapshot fanout_before = stage_snapshot("live.fanout");

  const auto start = std::chrono::steady_clock::now();
  live::ReplayFeedSource feed(data.updates, speed);
  feed.run(service);
  service.finalize();

  // Delivery is event-driven (publish wakes the serving loop through
  // its self-pipe), but the tail still needs a beat to drain: wait
  // until no subscriber has recorded a new sample for a few checks.
  auto total_samples = [&clients] {
    std::uint64_t n = 0;
    for (const auto& c : clients) n += c->samples();
    return n;
  };
  std::uint64_t last = total_samples();
  for (int quiet = 0, spins = 0; quiet < 3 && spins < 40; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::uint64_t now_n = total_samples();
    quiet = now_n == last ? quiet + 1 : 0;
    last = now_n;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LatResult r;
  r.e2e = stage_snapshot("live.e2e").diff_since(e2e_before);
  r.queue_wait = stage_snapshot("live.queue_wait").diff_since(wait_before);
  r.fanout = stage_snapshot("live.fanout").diff_since(fanout_before);
  r.wall_s = wall;
  for (auto& client : clients) client->stop();
  http.stop();
  service.stop();
  return r;
}

void print_table() {
  bench::print_header(
      "zslive delivery latency — ingest stamp to SSE subscriber read-back",
      "live detection service (§6 real-time detection at scale)");
  const auto data = bench::load_longlived2024();
  std::printf("  %zu update records, %zu beacon events\n",
              data.updates.size(), data.events.size());
  if constexpr (!obs::kLatHistCompiledIn) {
    std::printf("\n  zslat compiled out (ZS_LATHIST=OFF): no latency "
                "histograms to report.\n");
    return;
  }
  std::printf("\n  %-7s %5s %-6s %8s %12s %12s %12s %12s\n", "shards", "subs",
              "pacing", "samples", "e2e p50 ms", "e2e p99 ms", "wait p50 us",
              "fan p50 us");

  auto& registry = obs::Registry::global();
  for (const double speed : {0.0, kPacedSpeed}) {
    const char* pacing = speed <= 0.0 ? "max" : "paced";
    for (const std::size_t shards : {1u, 4u}) {
      for (const std::size_t subs : {2u, 8u}) {
        const LatResult r = run_config(data, shards, subs, speed);
        std::printf("  %-7zu %5zu %-6s %8llu %12.3f %12.3f %12.1f %12.1f\n",
                    shards, subs, pacing,
                    static_cast<unsigned long long>(r.e2e.count),
                    r.e2e.quantile_ns(0.50) * 1e-6,
                    r.e2e.quantile_ns(0.99) * 1e-6,
                    r.queue_wait.quantile_ns(0.50) * 1e-3,
                    r.fanout.quantile_ns(0.50) * 1e-3);
        const std::string suffix = "_s" + std::to_string(shards) + "x" +
                                   std::to_string(subs) + "_" + pacing;
        registry.gauge("zs_bench_lat_e2e_p50_us" + suffix)
            .set(static_cast<std::int64_t>(r.e2e.quantile_ns(0.50) * 1e-3));
        registry.gauge("zs_bench_lat_e2e_p99_us" + suffix)
            .set(static_cast<std::int64_t>(r.e2e.quantile_ns(0.99) * 1e-3));
        registry.gauge("zs_bench_lat_e2e_samples" + suffix)
            .set(static_cast<std::int64_t>(r.e2e.count));
      }
    }
  }
  std::printf("\n  (e2e = feed ingest stamp -> SSE byte read back by the\n"
              "   in-process subscriber; delivery is event-driven — each\n"
              "   publish wakes the serving loop through a self-pipe.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

file(REMOVE_RECURSE
  "libzs_netbase.a"
)

// Unit and property tests for the netbase module: IP parsing and
// formatting, prefix canonicalization, trie LPM, byte buffers, time.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "netbase/bytes.hpp"
#include "netbase/ip.hpp"
#include "netbase/rng.hpp"
#include "netbase/time.hpp"
#include "netbase/trie.hpp"

namespace zombiescope::netbase {
namespace {

TEST(IpAddress, ParsesAndFormatsV4) {
  auto a = IpAddress::parse("192.0.2.1");
  EXPECT_TRUE(a.is_v4());
  EXPECT_EQ(a.to_string(), "192.0.2.1");
  EXPECT_EQ(a.v4_value(), 0xC0000201u);
}

TEST(IpAddress, ParsesAndFormatsV6Canonical) {
  EXPECT_EQ(IpAddress::parse("2001:db8::1").to_string(), "2001:db8::1");
  EXPECT_EQ(IpAddress::parse("2001:0DB8:0:0:0:0:0:1").to_string(), "2001:db8::1");
  EXPECT_EQ(IpAddress::parse("::").to_string(), "::");
  EXPECT_EQ(IpAddress::parse("::1").to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("fe80::").to_string(), "fe80::");
  // RFC 5952: compress the longest run; leftmost on tie.
  EXPECT_EQ(IpAddress::parse("2001:0:0:1:0:0:0:1").to_string(), "2001:0:0:1::1");
  EXPECT_EQ(IpAddress::parse("2001:db8:0:0:1:0:0:1").to_string(), "2001:db8::1:0:0:1");
}

TEST(IpAddress, ParsesEmbeddedV4InV6) {
  auto a = IpAddress::parse("::ffff:192.0.2.1");
  EXPECT_TRUE(a.is_v6());
  EXPECT_EQ(a.bytes()[10], 0xff);
  EXPECT_EQ(a.bytes()[12], 192);
  EXPECT_EQ(a.bytes()[15], 1);
}

TEST(IpAddress, RejectsMalformed) {
  const char* bad[] = {"",       "1.2.3",      "1.2.3.4.5", "256.1.1.1", "01.2.3.4",
                       "1.2.3.", ":::",        "1::2::3",   "12345::",   "g::1",
                       "1:2:3:4:5:6:7:8:9",    "1.2.3.4:80"};
  for (const char* text : bad) {
    EXPECT_FALSE(IpAddress::try_parse(text).has_value()) << text;
  }
  EXPECT_THROW(IpAddress::parse("xyz"), std::invalid_argument);
}

TEST(IpAddress, BitAccess) {
  auto a = IpAddress::parse("128.0.0.1");
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
}

TEST(IpAddress, Ordering) {
  EXPECT_LT(IpAddress::parse("10.0.0.1"), IpAddress::parse("10.0.0.2"));
  EXPECT_LT(IpAddress::parse("10.0.0.1"), IpAddress::parse("::1"));  // v4 < v6 family
}

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p(IpAddress::parse("192.0.2.255"), 24);
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
  EXPECT_EQ(p, Prefix::parse("192.0.2.0/24"));

  Prefix q(IpAddress::parse("2a0d:3dc1:1851::ffff"), 48);
  EXPECT_EQ(q.to_string(), "2a0d:3dc1:1851::/48");
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::try_parse("192.0.2.0/33").has_value());
  EXPECT_FALSE(Prefix::try_parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix::try_parse("192.0.2.0").has_value());
  EXPECT_FALSE(Prefix::try_parse("/24").has_value());
}

TEST(Prefix, ContainsAndCovers) {
  auto p = Prefix::parse("2a0d:3dc1::/32");
  EXPECT_TRUE(p.contains(IpAddress::parse("2a0d:3dc1:1851::1")));
  EXPECT_FALSE(p.contains(IpAddress::parse("2a0d:3dc2::1")));
  EXPECT_FALSE(p.contains(IpAddress::parse("10.0.0.1")));  // family mismatch
  EXPECT_TRUE(p.covers(Prefix::parse("2a0d:3dc1:1851::/48")));
  EXPECT_TRUE(p.covers(p));
  EXPECT_FALSE(Prefix::parse("2a0d:3dc1:1851::/48").covers(p));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  Prefix v4_default = Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(v4_default.contains(IpAddress::parse("255.255.255.255")));
  EXPECT_FALSE(v4_default.contains(IpAddress::parse("::1")));
}

// Property: parse(to_string(p)) == p over randomized prefixes.
class PrefixRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixRoundTrip, TextRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::array<std::uint8_t, 16> bytes;
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const bool v4 = rng.chance(0.5);
    IpAddress addr = v4 ? IpAddress::v4({bytes[0], bytes[1], bytes[2], bytes[3]})
                        : IpAddress::v6(bytes);
    const int length = static_cast<int>(rng.uniform_int(0, addr.bit_length()));
    Prefix p(addr, length);
    EXPECT_EQ(Prefix::parse(p.to_string()), p) << p.to_string();
    EXPECT_EQ(IpAddress::parse(addr.to_string()), addr) << addr.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixRoundTrip, ::testing::Values(1, 7, 42, 1337));

TEST(PrefixTrie, ExactInsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(Prefix::parse("10.0.0.0/8"), 2));  // replace
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(Prefix::parse("10.0.0.0/9")), nullptr);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.erase(Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestMatchPrefersMostSpecific) {
  PrefixTrie<std::string> trie;
  trie.insert(Prefix::parse("2a0d:3dc1::/32"), "covering");
  trie.insert(Prefix::parse("2a0d:3dc1:1851::/48"), "beacon");
  Prefix matched;
  const std::string* hit = trie.longest_match(IpAddress::parse("2a0d:3dc1:1851::1"), &matched);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "beacon");
  EXPECT_EQ(matched, Prefix::parse("2a0d:3dc1:1851::/48"));
  // The paper's Fig. 1 partial-outage scenario: traffic to an address
  // outside the /48 falls back to the covering /32.
  hit = trie.longest_match(IpAddress::parse("2a0d:3dc1:ffff::1"), &matched);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "covering");
}

TEST(PrefixTrie, LongestMatchMissesOtherFamily) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("0.0.0.0/0"), 7);
  EXPECT_EQ(trie.longest_match(IpAddress::parse("::1")), nullptr);
  EXPECT_NE(trie.longest_match(IpAddress::parse("1.1.1.1")), nullptr);
}

TEST(PrefixTrie, VisitCoveredEnumeratesSubtree) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(Prefix::parse("10.2.0.0/16"), 3);
  trie.insert(Prefix::parse("11.0.0.0/8"), 4);
  std::map<std::string, int> seen;
  trie.visit_covered(Prefix::parse("10.0.0.0/8"),
                     [&](const Prefix& p, const int& v) { seen[p.to_string()] = v; });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["10.0.0.0/8"], 1);
  EXPECT_EQ(seen["10.1.0.0/16"], 2);
  EXPECT_EQ(seen["10.2.0.0/16"], 3);
}

// Property: trie LPM agrees with a linear scan over random data.
class TrieVsLinear : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieVsLinear, Agree) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 300; ++i) {
    std::array<std::uint8_t, 16> bytes{};
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    IpAddress addr = IpAddress::v6(bytes);
    // Cluster prefixes so covers actually happen.
    bytes[0] = 0x2a;
    bytes[1] = 0x0d;
    addr = IpAddress::v6(bytes);
    const int length = static_cast<int>(rng.uniform_int(8, 64));
    Prefix p(addr, length);
    trie.insert(p, i);
    // Keep only the latest value for duplicate prefixes, like the trie.
    bool replaced = false;
    for (auto& e : entries) {
      if (e.first == p) {
        e.second = i;
        replaced = true;
        break;
      }
    }
    if (!replaced) entries.emplace_back(p, i);
  }
  for (int i = 0; i < 500; ++i) {
    std::array<std::uint8_t, 16> bytes{};
    bytes[0] = 0x2a;
    bytes[1] = 0x0d;
    for (std::size_t k = 2; k < 9; ++k)
      bytes[k] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    IpAddress probe = IpAddress::v6(bytes);
    const int* got = trie.longest_match(probe);
    const std::pair<Prefix, int>* want = nullptr;
    for (const auto& e : entries) {
      if (!e.first.contains(probe)) continue;
      if (want == nullptr || e.first.length() > want->first.length()) want = &e;
    }
    if (want == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, want->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsLinear, ::testing::Values(3, 17, 99));

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderThrowsOnTruncation) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0);
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Bytes, PatchLengthField) {
  ByteWriter w;
  const std::size_t at = w.reserve(2);
  w.u32(42);
  w.patch_u16(at, static_cast<std::uint16_t>(w.size()));
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 6);
  EXPECT_EQ(r.u32(), 42u);
}

TEST(Bytes, SubReaderIsBounded) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.data());
  ByteReader sub = r.sub(4);
  EXPECT_EQ(sub.u32(), 1u);
  EXPECT_THROW(sub.u8(), DecodeError);
  EXPECT_EQ(r.u32(), 2u);
}

TEST(Time, CivilRoundTrip) {
  const TimePoint t = utc(2024, 6, 21, 19, 49, 0);
  CivilTime c = to_civil(t);
  EXPECT_EQ(c.year, 2024);
  EXPECT_EQ(c.month, 6);
  EXPECT_EQ(c.day, 21);
  EXPECT_EQ(c.hour, 19);
  EXPECT_EQ(c.minute, 49);
  EXPECT_EQ(from_civil(c), t);
}

TEST(Time, KnownEpochValues) {
  EXPECT_EQ(utc(1970, 1, 1), 0);
  EXPECT_EQ(utc(2018, 7, 19, 2, 0, 2), 1531965602);  // paper §3.1 example message
  EXPECT_EQ(utc(2024, 2, 29), utc(2024, 2, 28) + kDay);  // leap year
}

TEST(Time, StartOfMonthAndDay) {
  const TimePoint t = utc(2018, 7, 19, 2, 0, 2);
  EXPECT_EQ(start_of_month(t), utc(2018, 7, 1));
  EXPECT_EQ(start_of_day(t), utc(2018, 7, 19));
}

TEST(Time, PaperAggregatorExample) {
  // §3.1: Aggregator 10.19.29.192 -> 1,252,800 seconds after 2018-07-01
  // = 2018-07-15 12:00 UTC.
  EXPECT_EQ(utc(2018, 7, 1) + 1252800, utc(2018, 7, 15, 12, 0, 0));
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_utc(utc(2024, 6, 4, 11, 45, 0)), "2024-06-04 11:45:00");
  EXPECT_EQ(format_date(utc(2025, 3, 11, 23, 0, 0)), "2025-03-11");
  EXPECT_EQ(format_duration(90 * kMinute), "90m");
  EXPECT_EQ(format_duration(262 * kDay), "262.0d");
}

TEST(Time, RejectsInvalidCivil) {
  EXPECT_THROW(from_civil({2024, 13, 1, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(from_civil({2023, 2, 29, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(from_civil({2024, 6, 1, 24, 0, 0}), std::invalid_argument);
}

TEST(Rng, DeterministicAndForkIndependent) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  Rng child = a.fork();
  (void)child.uniform();  // must not perturb b's sibling stream draw count
}

TEST(Rng, ChanceRespectsProbabilityGrossly) {
  Rng rng(999);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.1) ? 1 : 0;
  EXPECT_GT(hits, 800);
  EXPECT_LT(hits, 1200);
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(4242);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.2), 2.0);
}

}  // namespace
}  // namespace zombiescope::netbase


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rost/rost.cpp" "src/rost/CMakeFiles/zs_rost.dir/rost.cpp.o" "gcc" "src/rost/CMakeFiles/zs_rost.dir/rost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/zs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/beacon/CMakeFiles/zs_beacon.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/zs_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/zs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/zs_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/zs_scenarios.dir/common.cpp.o"
  "CMakeFiles/zs_scenarios.dir/common.cpp.o.d"
  "CMakeFiles/zs_scenarios.dir/longlived2024.cpp.o"
  "CMakeFiles/zs_scenarios.dir/longlived2024.cpp.o.d"
  "CMakeFiles/zs_scenarios.dir/ris_replication.cpp.o"
  "CMakeFiles/zs_scenarios.dir/ris_replication.cpp.o.d"
  "libzs_scenarios.a"
  "libzs_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

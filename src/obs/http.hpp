// obs/http.hpp — live introspection over HTTP.
//
// A deliberately tiny embedded server (POSIX sockets + poll, no
// external deps, one background thread, sequential request handling)
// so a long zssim/zsdetect run can be inspected while it is running
// instead of only at exit:
//
//   GET /metrics       Prometheus text exposition of the global registry
//   GET /healthz       {"status":"ok",...} liveness JSON
//   GET /spans         the global tracer's span ring as zsobs-trace-v1
//   GET /journal/tail  last events of the global journal as NDJSON
//                      (?n=N, default 256, capped at the recent buffer)
//   GET /profile       sample the process with zsprof for ?seconds=N
//                      (default 5, cap 60) and return folded stacks;
//                      409 if a profiling session is already active,
//                      501 when the profiler is compiled out
//
// This is an operator port for a measurement tool, not a web server:
// requests are served one at a time, bodies are ignored, and anything
// but GET on a known path gets a terse error. Enabled with --http-port.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace zombiescope::obs {

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port) and starts the
  /// serving thread. Returns false (with no thread started) if the
  /// socket cannot be bound. Calling start() twice is an error.
  bool start(std::uint16_t port);

  /// Stops the serving thread and closes the socket. Idempotent.
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  /// The bound port (the real one when started with port 0).
  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  Counter m_requests_;
};

}  // namespace zombiescope::obs

# Empty compiler generated dependencies file for table3_missing_zombies.
# This may be replaced when dependencies are built.

// netbase/rng.hpp — deterministic random source.
//
// All stochastic behaviour in the library (topology generation, fault
// injection, propagation jitter) flows through this wrapper so that
// every scenario is reproducible from a single seed.

#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace zombiescope::netbase {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Bernoulli trial.
  bool chance(double probability) { return uniform() < probability; }

  /// Exponentially distributed duration with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pareto-distributed value with scale `xm` and shape `alpha` —
  /// used for heavy-tailed zombie lifetimes.
  double pareto(double xm, double alpha) {
    const double u = 1.0 - uniform();  // (0, 1]
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Picks a uniformly random element index for a container of size n.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child generator; useful to give each
  /// subsystem its own stream so adding draws in one place does not
  /// perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace zombiescope::netbase

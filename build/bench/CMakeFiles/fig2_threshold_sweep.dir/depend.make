# Empty dependencies file for fig2_threshold_sweep.
# This may be replaced when dependencies are built.

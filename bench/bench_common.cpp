#include "bench/bench_common.hpp"

#include <errno.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>

#include "mrt/codec.hpp"
#include "obs/export.hpp"
#include "obs/heap.hpp"
#include "obs/lathist.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace zombiescope::bench {

namespace {

namespace fs = std::filesystem;

// Set by print_header so the at-exit snapshot can report the bench's
// wall time.
std::chrono::steady_clock::time_point g_bench_started;
bool g_bench_started_valid = false;

/// Peak RSS of this process in bytes (ru_maxrss is KiB on Linux).
long long peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<long long>(usage.ru_maxrss) * 1024;
}

std::string period_tag(int which) {
  switch (which) {
    case 0:
      return "ris2018jul";
    case 1:
      return "ris2017oct";
    default:
      return "ris2017mar";
  }
}

// Rebuilds the deterministic (non-archive) parts of a period output.
void fill_ris_metadata(const scenarios::RisPeriodSpec& spec,
                       scenarios::ScenarioOutput& out) {
  const auto schedule = beacon::RisBeaconSchedule::classic();
  out.events = schedule.events(spec.start, spec.end);
  out.studied_announcements = static_cast<int>(out.events.size());
  out.noisy_peers = {zombie::PeerKey{
      scenarios::kNoisyRisPeerAsn,
      scenarios::peer_address_for(scenarios::kNoisyRisPeerAsn, 0, true)}};
  // Peer sessions are recovered from the archive itself (like the
  // paper, which learns the peer set from the data).
  std::set<zombie::PeerKey> peers;
  for (const auto& record : out.updates) {
    if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record))
      peers.insert({msg->peer_asn, msg->peer_address});
  }
  out.all_peers.assign(peers.begin(), peers.end());
}

}  // namespace

std::string cache_dir() {
  if (const char* env = std::getenv("ZS_CACHE_DIR"); env != nullptr && *env != '\0')
    return env;
  return "zs_bench_cache";
}

scenarios::RisPeriodSpec ris_spec(int which) {
  switch (which) {
    case 0:
      return scenarios::period_2018jul();
    case 1:
      return scenarios::period_2017oct();
    default:
      return scenarios::period_2017mar();
  }
}

scenarios::ScenarioOutput load_ris_period(int which) {
  obs::ScopedSpan span("bench.load_ris_period");
  const auto spec = ris_spec(which);
  const std::string path = cache_dir() + "/" + period_tag(which) + ".updates.mrt";
  scenarios::ScenarioOutput out;
  if (fs::exists(path)) {
    std::fprintf(stderr, "[cache] loading %s\n", path.c_str());
    out.updates = mrt::read_file(path);
  } else {
    std::fprintf(stderr, "[sim] running period %s (cache miss)\n", spec.label.c_str());
    out = scenarios::run_ris_period(spec);
    fs::create_directories(cache_dir());
    mrt::write_file(path, out.updates);
  }
  fill_ris_metadata(spec, out);
  return out;
}

scenarios::LongLived2024Output load_longlived2024() {
  obs::ScopedSpan span("bench.load_longlived2024");
  const scenarios::LongLived2024Spec spec;
  const std::string updates_path = cache_dir() + "/longlived2024.updates.mrt";
  const std::string dumps_path = cache_dir() + "/longlived2024.ribs.mrt";
  scenarios::LongLived2024Output out;
  if (fs::exists(updates_path) && fs::exists(dumps_path)) {
    std::fprintf(stderr, "[cache] loading %s\n", updates_path.c_str());
    out.updates = mrt::read_file(updates_path);
    out.rib_dumps = mrt::read_file(dumps_path);
    // Deterministic metadata, recomputed.
    const auto daily = beacon::LongLivedBeaconSchedule::paper_deployment(
        beacon::LongLivedBeaconSchedule::Approach::kDaily);
    const auto fifteen = beacon::LongLivedBeaconSchedule::paper_deployment(
        beacon::LongLivedBeaconSchedule::Approach::kFifteenDay);
    out.events =
        daily.events(netbase::utc(2024, 6, 4, 11, 45, 0), netbase::utc(2024, 6, 10, 9, 30, 0) + 1);
    auto second = fifteen.events(netbase::utc(2024, 6, 10, 11, 30, 0),
                                 netbase::utc(2024, 6, 22, 17, 30, 0) + 1);
    out.events.insert(out.events.end(), second.begin(), second.end());
    out.studied_announcements = 0;
    for (const auto& event : out.events)
      if (!event.superseded) ++out.studied_announcements;
    out.resurrected_prefix = fifteen.prefix_for(netbase::utc(2024, 6, 21, 18, 45, 0));
    out.impactful_prefix = fifteen.prefix_for(netbase::utc(2024, 6, 18, 22, 30, 0));
    out.longest_prefix = fifteen.prefix_for(netbase::utc(2024, 6, 18, 16, 0, 0));
    out.roa_removed_at = netbase::utc(2024, 6, 22, 19, 49, 0);
    out.rrc25_noisy_routers = {
        {scenarios::Cast::kNoisy1, netbase::IpAddress::parse("176.119.234.201")},
        {scenarios::Cast::kNoisy1, netbase::IpAddress::parse("2001:678:3f4:5::1")},
        {scenarios::Cast::kNoisy2, netbase::IpAddress::parse("2a0c:9a40:1031::504")}};
    for (const auto& key : out.rrc25_noisy_routers) out.noisy_peers.insert(key);
    std::set<zombie::PeerKey> peers;
    for (const auto& record : out.updates) {
      if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record))
        peers.insert({msg->peer_asn, msg->peer_address});
    }
    out.all_peers.assign(peers.begin(), peers.end());
  } else {
    std::fprintf(stderr, "[sim] running longlived2024 (cache miss)\n");
    out = scenarios::run_longlived2024(spec);
    fs::create_directories(cache_dir());
    mrt::write_file(updates_path, out.updates);
    mrt::write_file(dumps_path, out.rib_dumps);
  }
  return out;
}

void emit_metrics_snapshot(const std::string& name) {
  // Stop the profiling session (started by print_header) even when the
  // JSON snapshot itself is suppressed, so the timer is never left
  // armed past the harness's lifetime.
  obs::ProfileReport profile;
  if constexpr (obs::kProfCompiledIn) {
    if (obs::Profiler::global().running()) profile = obs::Profiler::global().stop();
  }
  obs::HeapReport heap;
  if constexpr (obs::kHeapCompiledIn) {
    if (obs::HeapProfiler::global().running()) {
      heap = obs::HeapProfiler::global().stop();  // also refreshes zs_heap_*
    }
  }
  if (const char* env = std::getenv("ZS_NO_BENCH_JSON"); env != nullptr && *env != '\0')
    return;
  std::string dir = ".";
  if (const char* env = std::getenv("ZS_BENCH_JSON_DIR"); env != nullptr && *env != '\0')
    dir = env;
  const std::string path = dir + "/BENCH_" + name + ".json";
  try {
    char wall[32] = "0";
    if (g_bench_started_valid) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - g_bench_started;
      std::snprintf(wall, sizeof(wall), "%.3f", elapsed.count());
    }
    obs::JsonSections extra;
    extra.emplace_back("bench", "\"" + name + "\"");
    extra.emplace_back("wall_time_s", wall);
    extra.emplace_back("peak_rss_bytes", std::to_string(peak_rss_bytes()));
    if (profile.valid) extra.emplace_back("profile", profile.to_json());
    if (heap.valid) extra.emplace_back("heap", heap.to_json());
    // The zslat stage-latency section (empty registry renders "{}",
    // skipped so snapshots without live pipelines stay unchanged).
    if (const std::string latency = obs::LatRegistry::global().to_json();
        latency != "{}") {
      extra.emplace_back("latency", latency);
    }
    const auto spans = obs::Tracer::global().snapshot();
    obs::write_text_file(
        path, obs::to_json(obs::Registry::global().snapshot(), spans, extra));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[obs] metrics snapshot failed: %s\n", e.what());
  }
}

void begin_bench_session() {
  static const bool started = [] {
    g_bench_started = std::chrono::steady_clock::now();
    g_bench_started_valid = true;
    if constexpr (obs::kProfCompiledIn) {
      if (std::getenv("ZS_NO_PROF") == nullptr) obs::Profiler::global().start();
    }
    // The heap section rides along by default so every BENCH_*.json
    // carries allocation counts next to its profile ($ZS_NO_HEAP opts
    // out; a sanitizer build makes start() a graceful no-op).
    if constexpr (obs::kHeapCompiledIn) {
      if (std::getenv("ZS_NO_HEAP") == nullptr)
        obs::HeapProfiler::global().start();
    }
    return true;
  }();
  (void)started;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  // The snapshot runs at exit so it captures everything the bench did
  // after this header, named after the binary itself. The zsprof
  // session starts here so the snapshot's profile section covers the
  // same window as its wall time ($ZS_NO_PROF opts out).
  static const bool installed = [] {
    begin_bench_session();
    std::atexit([] { emit_metrics_snapshot(program_invocation_short_name); });
    return true;
  }();
  (void)installed;
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace zombiescope::bench

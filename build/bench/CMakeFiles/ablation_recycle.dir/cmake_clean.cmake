file(REMOVE_RECURSE
  "CMakeFiles/ablation_recycle.dir/ablation_recycle.cpp.o"
  "CMakeFiles/ablation_recycle.dir/ablation_recycle.cpp.o.d"
  "ablation_recycle"
  "ablation_recycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

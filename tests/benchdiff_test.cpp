// Tests for obs/benchdiff — snapshot loading, the robust statistics,
// and the regression gate (A/A quiet, injected 2x slowdown trips).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/benchdiff.hpp"

namespace obs = zombiescope::obs;

namespace {

/// A minimal zsobs-v1 snapshot fixture. `sanitizer` participates in
/// build-identity compatibility; wall/rss/counter are the metrics.
std::string snapshot_json(double wall, long long rss, long long counter,
                          const std::string& sanitizer = "") {
  return R"({
  "schema": "zsobs-v1",
  "build_info": {"git_sha": "abc123", "compiler": "gcc 12.2.0",
                 "build_type": "RelWithDebInfo", "sanitizer": ")" +
         sanitizer + R"(", "arch": "x86_64"},
  "bench": "fixture",
  "wall_time_s": )" + std::to_string(wall) + R"(,
  "peak_rss_bytes": )" + std::to_string(rss) + R"(,
  "counters": {"zs_events_total": )" + std::to_string(counter) + R"(},
  "gauges": {},
  "histograms": {"zs_apply_seconds": {"bounds": [0.1], "counts": [4],
                 "sum": 0.25, "count": 4}},
  "spans": []
})";
}

std::vector<obs::BenchSnapshot> runs(std::initializer_list<double> walls,
                                     const std::string& sanitizer = "") {
  std::vector<obs::BenchSnapshot> out;
  int i = 0;
  for (double w : walls) {
    out.push_back(obs::parse_bench_snapshot(
        snapshot_json(w, 1000000, 500, sanitizer),
        "run" + std::to_string(i++) + ".json"));
  }
  return out;
}

TEST(ObsBenchDiffJson, ParsesScalarsArraysObjects) {
  const auto v = obs::parse_json(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": "x\n\"y\""}, "e": -2e3})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->kind, obs::JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(v->find("a")->number, 1.5);
  ASSERT_EQ(v->find("b")->array.size(), 3u);
  EXPECT_TRUE(v->find("b")->array[0].boolean);
  EXPECT_EQ(v->find("c")->find("d")->str, "x\n\"y\"");
  EXPECT_DOUBLE_EQ(v->find("e")->number, -2000.0);
}

TEST(ObsBenchDiffJson, RejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_json("{").has_value());
  EXPECT_FALSE(obs::parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(obs::parse_json("[1, 2,]").has_value());
  EXPECT_FALSE(obs::parse_json("{} trailing").has_value());
  EXPECT_FALSE(obs::parse_json("\"unterminated").has_value());
}

TEST(ObsBenchDiffSnapshot, FlattensMetricsWithKindPrefixes) {
  const obs::BenchSnapshot snap =
      obs::parse_bench_snapshot(snapshot_json(1.25, 4096, 99), "x.json");
  EXPECT_EQ(snap.bench_name, "fixture");
  EXPECT_EQ(snap.build.compiler, "gcc 12.2.0");
  EXPECT_DOUBLE_EQ(snap.metrics.at("wall_time_s"), 1.25);
  EXPECT_DOUBLE_EQ(snap.metrics.at("peak_rss_bytes"), 4096);
  EXPECT_DOUBLE_EQ(snap.metrics.at("counter:zs_events_total"), 99);
  EXPECT_DOUBLE_EQ(snap.metrics.at("hist_sum:zs_apply_seconds"), 0.25);
  EXPECT_DOUBLE_EQ(snap.metrics.at("hist_count:zs_apply_seconds"), 4);
}

TEST(ObsBenchDiffSnapshot, BenchNameFallsBackToFilename) {
  const std::string json = R"({"schema": "zsobs-v1", "counters": {}})";
  const obs::BenchSnapshot snap =
      obs::parse_bench_snapshot(json, "dir/BENCH_micro_hotpaths.json");
  EXPECT_EQ(snap.bench_name, "micro_hotpaths");
}

TEST(ObsBenchDiffSnapshot, RejectsForeignSchema) {
  EXPECT_THROW(obs::parse_bench_snapshot(R"({"schema": "other"})", "x"),
               std::runtime_error);
  EXPECT_THROW(obs::parse_bench_snapshot("[]", "x"), std::runtime_error);
  EXPECT_THROW(obs::parse_bench_snapshot("not json", "x"), std::runtime_error);
}

TEST(ObsBenchDiffStats, QuantileInterpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(obs::sorted_quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::sorted_quantile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(obs::sorted_quantile(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(obs::sorted_quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(obs::sorted_quantile({}, 0.5), 0.0);
}

TEST(ObsBenchDiffStats, IqrRejectsWildOutlier) {
  const auto kept = obs::iqr_reject({1.0, 1.01, 0.99, 1.02, 50.0});
  EXPECT_EQ(kept.size(), 4u);
  for (double v : kept) EXPECT_LT(v, 2.0);
}

TEST(ObsBenchDiffStats, SmallGroupsAreKeptVerbatim) {
  const auto kept = obs::iqr_reject({1.0, 100.0, 3.0});
  EXPECT_EQ(kept.size(), 3u);
}

TEST(ObsBenchDiff, AAComparisonStaysQuiet) {
  // Same workload twice with realistic run-to-run jitter: no metric
  // should be significant, the gate must not trip.
  const auto base = runs({1.000, 1.012, 0.995});
  const auto cand = runs({1.003, 0.998, 1.010});
  const obs::DiffResult result = obs::diff_benches(base, cand);
  EXPECT_FALSE(result.gate_tripped);
  ASSERT_EQ(result.benches.size(), 1u);
  for (const auto& delta : result.benches[0].deltas)
    EXPECT_FALSE(delta.regression) << delta.name;
}

TEST(ObsBenchDiff, InjectedSlowdownTripsGate) {
  const auto base = runs({1.000, 1.012, 0.995});
  const auto cand = runs({2.000, 2.024, 1.990});
  const obs::DiffResult result = obs::diff_benches(base, cand);
  EXPECT_TRUE(result.gate_tripped);
  ASSERT_EQ(result.benches.size(), 1u);
  bool wall_regressed = false;
  for (const auto& delta : result.benches[0].deltas)
    if (delta.name == "wall_time_s") {
      wall_regressed = delta.regression;
      EXPECT_NEAR(delta.delta_pct, 100.0, 5.0);
    }
  EXPECT_TRUE(wall_regressed);
  const std::string table =
      obs::render_table(result, obs::DiffConfig{});
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
}

TEST(ObsBenchDiff, ImprovementDoesNotTrip) {
  const auto base = runs({2.0, 2.02, 1.99});
  const auto cand = runs({1.0, 1.01, 0.99});
  const obs::DiffResult result = obs::diff_benches(base, cand);
  EXPECT_FALSE(result.gate_tripped);
}

TEST(ObsBenchDiff, OutlierRunDoesNotTripGate) {
  // One baseline run hit a cold cache (4x): IQR rejection plus
  // min-of-N keeps the comparison honest.
  const auto base = runs({1.00, 1.01, 0.99, 1.02});
  const auto cand = runs({1.00, 1.01, 4.00, 0.99});
  const obs::DiffResult result = obs::diff_benches(base, cand);
  EXPECT_FALSE(result.gate_tripped);
}

TEST(ObsBenchDiff, CounterDriftIsInformationalByDefault) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  base[0].metrics["counter:zs_events_total"] = 500;
  cand[0].metrics["counter:zs_events_total"] = 5000;  // 10x drift
  obs::DiffConfig config;
  obs::DiffResult result = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(result.gate_tripped);
  bool seen = false;
  for (const auto& delta : result.benches[0].deltas)
    if (delta.name == "counter:zs_events_total") {
      seen = true;
      EXPECT_TRUE(delta.significant);
      EXPECT_FALSE(delta.gated);
    }
  EXPECT_TRUE(seen);

  config.gate_counters = true;
  result = obs::diff_benches(base, cand, config);
  EXPECT_TRUE(result.gate_tripped);
}

TEST(ObsBenchDiffSnapshot, FlattensHeapSectionAsHeapMetrics) {
  std::string json = snapshot_json(1.0, 1000000, 500);
  json.insert(json.rfind('}'),
              R"(, "heap": {"schema": "zsheap-v1", "valid": true,
  "total_bytes": 123456, "allocs": 789, "frees": 700,
  "peak_live_bytes": 4096,
  "size_class_allocs": {"16": 10},
  "spans": {"decode": {"bytes": 100000, "allocs": 600}},
  "top_sites": []})");
  const obs::BenchSnapshot snap = obs::parse_bench_snapshot(json, "x.json");
  EXPECT_DOUBLE_EQ(snap.metrics.at("heap:total_bytes"), 123456);
  EXPECT_DOUBLE_EQ(snap.metrics.at("heap:allocs"), 789);
  EXPECT_DOUBLE_EQ(snap.metrics.at("heap:peak_live_bytes"), 4096);
  EXPECT_DOUBLE_EQ(snap.metrics.at("heap_span_bytes:decode"), 100000);
  // Nested objects stay out of the flat heap:* namespace.
  EXPECT_EQ(snap.metrics.count("heap:16"), 0u);
}

TEST(ObsBenchDiff, AllocDriftIsInformationalWithoutGateAlloc) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  base[0].metrics["heap:total_bytes"] = 1000000;
  base[0].metrics["heap:allocs"] = 10000;
  cand[0].metrics["heap:total_bytes"] = 1200000;  // +20% allocation
  cand[0].metrics["heap:allocs"] = 12000;
  obs::DiffConfig config;
  obs::DiffResult result = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(result.gate_tripped);
  bool seen = false;
  for (const auto& delta : result.benches[0].deltas)
    if (delta.name == "heap:total_bytes") {
      seen = true;
      EXPECT_TRUE(delta.significant);
      EXPECT_FALSE(delta.gated);
    }
  EXPECT_TRUE(seen);

  // --gate-alloc turns the same +20% drift into a tripped gate.
  config.gate_alloc = true;
  result = obs::diff_benches(base, cand, config);
  EXPECT_TRUE(result.gate_tripped);
}

TEST(ObsBenchDiff, GateAllocAcceptsSelfComparison) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  for (auto* group : {&base, &cand}) {
    (*group)[0].metrics["heap:total_bytes"] = 1000000;
    (*group)[0].metrics["heap:allocs"] = 10000;
  }
  obs::DiffConfig config;
  config.gate_alloc = true;
  const obs::DiffResult result = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(result.gate_tripped);
}

TEST(ObsBenchDiff, GateAllocIgnoresOtherHeapMetrics) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  base[0].metrics["heap:peak_live_bytes"] = 1000;
  cand[0].metrics["heap:peak_live_bytes"] = 10000;  // 10x, ungated
  base[0].metrics["heap_span_bytes:decode"] = 1000;
  cand[0].metrics["heap_span_bytes:decode"] = 10000;
  obs::DiffConfig config;
  config.gate_alloc = true;
  const obs::DiffResult result = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(result.gate_tripped);
}

TEST(ObsBenchDiffSnapshot, FlattensLatencySectionAsLatencyMetrics) {
  std::string json = snapshot_json(1.0, 1000000, 500);
  json.insert(json.rfind('}'),
              R"(, "latency": {"live.e2e": {"count": 3200, "sum_ns": 64000000,
  "min_ns": 900, "max_ns": 120000, "mean_ns": 20000.0,
  "p50_ns": 15000.0, "p95_ns": 80000.0, "p99_ns": 110000.0},
  "live.queue_wait": {"count": 471355, "sum_ns": 9000000,
  "min_ns": 100, "max_ns": 50000, "mean_ns": 19.1,
  "p50_ns": 12.0, "p95_ns": 95.0, "p99_ns": 400.0}})");
  const obs::BenchSnapshot snap = obs::parse_bench_snapshot(json, "x.json");
  EXPECT_DOUBLE_EQ(snap.metrics.at("latency:live.e2e:p50_ns"), 15000.0);
  EXPECT_DOUBLE_EQ(snap.metrics.at("latency:live.e2e:p99_ns"), 110000.0);
  EXPECT_DOUBLE_EQ(snap.metrics.at("latency:live.e2e:mean_ns"), 20000.0);
  EXPECT_DOUBLE_EQ(snap.metrics.at("latency:live.e2e:count"), 3200);
  EXPECT_DOUBLE_EQ(snap.metrics.at("latency:live.queue_wait:p99_ns"), 400.0);
  // min/max/sum are not comparable scalars; they stay out of the
  // flattened namespace.
  EXPECT_EQ(snap.metrics.count("latency:live.e2e:min_ns"), 0u);
  EXPECT_EQ(snap.metrics.count("latency:live.e2e:sum_ns"), 0u);
}

TEST(ObsBenchDiff, LatencyDriftIsInformationalWithoutGateLatency) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  base[0].metrics["latency:live.e2e:p99_ns"] = 100000.0;
  cand[0].metrics["latency:live.e2e:p99_ns"] = 120000.0;  // +20% delivery p99
  obs::DiffConfig config;
  obs::DiffResult result = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(result.gate_tripped);
  bool seen = false;
  for (const auto& delta : result.benches[0].deltas)
    if (delta.name == "latency:live.e2e:p99_ns") {
      seen = true;
      EXPECT_TRUE(delta.significant);
      EXPECT_FALSE(delta.gated);
    }
  EXPECT_TRUE(seen);

  // --gate-latency turns the same +20% regression into a tripped gate.
  config.gate_latency = true;
  result = obs::diff_benches(base, cand, config);
  EXPECT_TRUE(result.gate_tripped);
}

TEST(ObsBenchDiff, GateLatencyAcceptsSelfComparison) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  for (auto* group : {&base, &cand}) {
    (*group)[0].metrics["latency:live.e2e:p99_ns"] = 100000.0;
    (*group)[0].metrics["latency:live.e2e:p50_ns"] = 15000.0;
  }
  obs::DiffConfig config;
  config.gate_latency = true;
  const obs::DiffResult result = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(result.gate_tripped);
}

TEST(ObsBenchDiff, GateLatencyGatesOnlyP99) {
  // p50/mean/count wobble is informational even under --gate-latency:
  // the gate contract is the tail.
  auto base = runs({1.0});
  auto cand = runs({1.0});
  base[0].metrics["latency:live.e2e:p50_ns"] = 10000.0;
  cand[0].metrics["latency:live.e2e:p50_ns"] = 20000.0;  // 2x, ungated
  base[0].metrics["latency:live.e2e:count"] = 1000.0;
  cand[0].metrics["latency:live.e2e:count"] = 2000.0;
  obs::DiffConfig config;
  config.gate_latency = true;
  const obs::DiffResult result = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(result.gate_tripped);
}

TEST(ObsBenchDiff, GateLatencyIgnoresSubMicrosecondStages) {
  // A 97 ns -> 160 ns stage p99 is clock granularity, not a delivery
  // regression; both sides under the 1 us floor never gate. Crossing
  // the floor (0.5 us -> 5 us) is an order-of-magnitude change and
  // still does.
  auto base = runs({1.0});
  auto cand = runs({1.0});
  base[0].metrics["latency:live.ingest_enqueue:p99_ns"] = 97.0;
  cand[0].metrics["latency:live.ingest_enqueue:p99_ns"] = 160.0;
  obs::DiffConfig config;
  config.gate_latency = true;
  EXPECT_FALSE(obs::diff_benches(base, cand, config).gate_tripped);

  base[0].metrics["latency:live.queue_wait:p99_ns"] = 500.0;
  cand[0].metrics["latency:live.queue_wait:p99_ns"] = 5000.0;
  EXPECT_TRUE(obs::diff_benches(base, cand, config).gate_tripped);
}

TEST(ObsBenchDiff, HistogramSecondsParticipateInGate) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  base[0].metrics["hist_sum:zs_apply_seconds"] = 0.25;
  cand[0].metrics["hist_sum:zs_apply_seconds"] = 0.60;
  const obs::DiffResult result = obs::diff_benches(base, cand);
  EXPECT_TRUE(result.gate_tripped);
}

TEST(ObsBenchDiff, IncompatibleBuildsRefuseToCompare) {
  const auto base = runs({1.0}, "");
  const auto cand = runs({1.0}, "address");
  const obs::DiffResult result = obs::diff_benches(base, cand);
  EXPECT_TRUE(result.gate_tripped);
  ASSERT_EQ(result.benches.size(), 1u);
  EXPECT_NE(result.benches[0].incompatible.find("sanitizer"), std::string::npos);
  EXPECT_TRUE(result.benches[0].deltas.empty());

  obs::DiffConfig config;
  config.force = true;
  const obs::DiffResult forced = obs::diff_benches(base, cand, config);
  EXPECT_FALSE(forced.gate_tripped);
  EXPECT_FALSE(forced.benches[0].deltas.empty());
}

TEST(ObsBenchDiff, MismatchedBenchNamesAreSkippedNotCompared) {
  auto base = runs({1.0});
  auto cand = runs({1.0});
  cand[0].bench_name = "other_bench";
  const obs::DiffResult result = obs::diff_benches(base, cand);
  ASSERT_EQ(result.benches.size(), 2u);
  for (const auto& bench : result.benches) {
    EXPECT_FALSE(bench.incompatible.empty());
    EXPECT_FALSE(bench.gate_tripped);  // absence is not a regression
  }
}

TEST(ObsBenchDiff, RenderJsonIsWellFormed) {
  const auto base = runs({1.0, 1.01, 0.99});
  const auto cand = runs({2.0, 2.02, 1.98});
  const obs::DiffResult result = obs::diff_benches(base, cand);
  const std::string json = obs::render_json(result);
  EXPECT_NE(json.find("\"schema\": \"zsbenchdiff-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"gate_tripped\": true"), std::string::npos);
  // The output must itself parse with the library's own reader.
  const auto parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->find("gate_tripped")->boolean);
}

}  // namespace

#include "bgp/session_fsm.hpp"

namespace zombiescope::bgp {

std::string to_string(FsmState state) {
  switch (state) {
    case FsmState::kIdle:
      return "Idle";
    case FsmState::kConnect:
      return "Connect";
    case FsmState::kOpenSent:
      return "OpenSent";
    case FsmState::kOpenConfirm:
      return "OpenConfirm";
    case FsmState::kEstablished:
      return "Established";
  }
  return "?";
}

void SessionFsm::start(netbase::TimePoint now) {
  (void)now;
  if (state_ == FsmState::kIdle) state_ = FsmState::kConnect;
}

void SessionFsm::stop(netbase::TimePoint now) {
  if (state_ == FsmState::kEstablished) drop_session(now, "administrative stop");
  state_ = FsmState::kIdle;
  out_queue_.clear();
  send_hold_expires_.reset();
}

void SessionFsm::connected(netbase::TimePoint now) {
  if (state_ != FsmState::kConnect) return;
  state_ = FsmState::kOpenSent;
  enqueue(now, FsmMessage{MessageType::kOpen, std::nullopt});
  hold_expires_ = now + (config_.hold_time > 0 ? config_.hold_time : 240);
}

void SessionFsm::receive(netbase::TimePoint now, const FsmMessage& message) {
  // Any message from the peer proves liveness.
  if (config_.hold_time > 0) hold_expires_ = now + config_.hold_time;

  switch (state_) {
    case FsmState::kIdle:
    case FsmState::kConnect:
      return;  // stray packet; transport not up from our perspective
    case FsmState::kOpenSent:
      if (message.type == MessageType::kOpen) {
        state_ = FsmState::kOpenConfirm;
        enqueue(now, FsmMessage{MessageType::kKeepalive, std::nullopt});
      } else if (message.type == MessageType::kNotification) {
        stop(now);
      }
      return;
    case FsmState::kOpenConfirm:
      if (message.type == MessageType::kKeepalive) {
        state_ = FsmState::kEstablished;
        keepalive_due_ = now + config_.keepalive_interval;
      } else if (message.type == MessageType::kNotification) {
        stop(now);
      }
      return;
    case FsmState::kEstablished:
      if (message.type == MessageType::kNotification) {
        drop_session(now, "NOTIFICATION from peer");
        state_ = FsmState::kIdle;
      }
      return;
  }
}

bool SessionFsm::send_update(netbase::TimePoint now, UpdateMessage update) {
  if (state_ != FsmState::kEstablished) return false;
  enqueue(now, FsmMessage{MessageType::kUpdate, std::move(update)});
  return true;
}

std::vector<FsmMessage> SessionFsm::drain(netbase::TimePoint now, std::size_t max_messages) {
  std::vector<FsmMessage> out;
  while (!out_queue_.empty() && out.size() < max_messages) {
    out.push_back(std::move(out_queue_.front()));
    out_queue_.pop_front();
  }
  // Send progress: the RFC 9687 timer restarts (or clears) whenever
  // the queue drains.
  if (!out.empty()) {
    if (out_queue_.empty())
      send_hold_expires_.reset();
    else if (config_.send_hold_time > 0)
      send_hold_expires_ = now + config_.send_hold_time;
  }
  return out;
}

void SessionFsm::tick(netbase::TimePoint now) {
  if (state_ != FsmState::kEstablished && state_ != FsmState::kOpenSent &&
      state_ != FsmState::kOpenConfirm)
    return;

  // Hold timer (RFC 4271 §8.2.2): nothing received in time.
  if (config_.hold_time > 0 && now >= hold_expires_) {
    drop_session(now, "hold timer expired");
    state_ = FsmState::kIdle;
    return;
  }

  if (state_ != FsmState::kEstablished) return;

  // Send hold timer (RFC 9687): the peer has not read anything we
  // queued for send_hold_time.
  if (send_hold_expires_.has_value() && now >= *send_hold_expires_) {
    drop_session(now, "send hold timer expired (RFC 9687)");
    state_ = FsmState::kIdle;
    return;
  }

  // KEEPALIVE schedule.
  if (config_.keepalive_interval > 0 && now >= keepalive_due_) {
    enqueue(now, FsmMessage{MessageType::kKeepalive, std::nullopt});
    keepalive_due_ = now + config_.keepalive_interval;
  }
}

void SessionFsm::enqueue(netbase::TimePoint now, FsmMessage message) {
  out_queue_.push_back(std::move(message));
  if (config_.send_hold_time > 0 && !send_hold_expires_.has_value())
    send_hold_expires_ = now + config_.send_hold_time;
}

void SessionFsm::drop_session(netbase::TimePoint now, const std::string& reason) {
  (void)now;
  last_error_ = reason;
  ++session_drops_;
  out_queue_.clear();
  send_hold_expires_.reset();
}

}  // namespace zombiescope::bgp

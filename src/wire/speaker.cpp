#include "wire/speaker.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace zombiescope::wire {

namespace {

netbase::TimePoint steady_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

netbase::TimePoint system_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bgp::SessionState mrt_state(bgp::FsmState state) {
  switch (state) {
    case bgp::FsmState::kIdle:
      return bgp::SessionState::kIdle;
    case bgp::FsmState::kConnect:
      return bgp::SessionState::kConnect;
    case bgp::FsmState::kOpenSent:
      return bgp::SessionState::kOpenSent;
    case bgp::FsmState::kOpenConfirm:
      return bgp::SessionState::kOpenConfirm;
    case bgp::FsmState::kEstablished:
      return bgp::SessionState::kEstablished;
  }
  return bgp::SessionState::kIdle;
}

netbase::IpAddress peer_socket_address(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&ss), &len) == 0) {
    if (ss.ss_family == AF_INET) {
      const auto* sin = reinterpret_cast<const sockaddr_in*>(&ss);
      return netbase::IpAddress::v4(ntohl(sin->sin_addr.s_addr));
    }
    if (ss.ss_family == AF_INET6) {
      const auto* sin6 = reinterpret_cast<const sockaddr_in6*>(&ss);
      std::array<std::uint8_t, 16> b{};
      std::memcpy(b.data(), sin6->sin6_addr.s6_addr, 16);
      return netbase::IpAddress::v6(b);
    }
  }
  return netbase::IpAddress::v4(0);
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
}

struct WireMetrics {
  obs::Counter msgs_in;
  obs::Counter msgs_out;
  obs::Counter updates_in;
  obs::Counter notify_in;
  obs::Counter notify_out;
  obs::Counter sessions_opened;
  obs::Counter sessions_closed;
  obs::Counter collisions;
  obs::Counter decode_errors;
  obs::Counter gr_retained_routes;
  obs::Counter gr_flushed_routes;
  obs::Gauge established;
  obs::Gauge stale_routes;

  static WireMetrics& get() {
    static WireMetrics m = [] {
      auto& r = obs::Registry::global();
      WireMetrics w;
      w.msgs_in = r.counter("zs_wire_messages_in_total");
      w.msgs_out = r.counter("zs_wire_messages_out_total");
      w.updates_in = r.counter("zs_wire_updates_in_total");
      w.notify_in = r.counter("zs_wire_notifications_in_total");
      w.notify_out = r.counter("zs_wire_notifications_out_total");
      w.sessions_opened = r.counter("zs_wire_sessions_opened_total");
      w.sessions_closed = r.counter("zs_wire_sessions_closed_total");
      w.collisions = r.counter("zs_wire_collisions_total");
      w.decode_errors = r.counter("zs_wire_decode_errors_total");
      w.gr_retained_routes = r.counter("zs_wire_gr_retained_routes_total");
      w.gr_flushed_routes = r.counter("zs_wire_gr_flushed_routes_total");
      w.established = r.gauge("zs_wire_sessions_established");
      w.stale_routes = r.gauge("zs_wire_stale_routes");
      return w;
    }();
    return m;
  }
};

void journal_session_event(obs::JournalEventType type, const SessionRef& ref,
                           std::int64_t a, std::int64_t b, std::int64_t c = 0) {
  auto& journal = obs::Journal::global();
  if (!journal.enabled(obs::kCatSession)) return;
  obs::JournalEvent event;
  event.type = type;
  event.time = system_seconds();
  event.has_peer = true;
  event.peer_asn = ref.peer_asn;
  event.peer_address = ref.peer_address;
  event.a = a;
  event.b = b;
  event.c = c;
  journal.emit<obs::kCatSession>(event);
}

}  // namespace

// --- internal structs ------------------------------------------------

struct BgpSpeaker::Session {
  explicit Session(const bgp::FsmConfig& fsm_config,
                   const RetentionConfig& retention_config)
      : fsm(fsm_config), retention(retention_config) {}

  std::uint64_t id = 0;
  int fd = -1;
  bool passive = true;
  bool connecting = false;  // non-blocking connect still in flight
  std::size_t active_index = static_cast<std::size_t>(-1);
  bool dead = false;
  bool peer_notified = false;  // peer already got / sent a NOTIFICATION

  bgp::SessionFsm fsm;
  bgp::FsmState prev_state = bgp::FsmState::kIdle;
  bool was_established = false;

  FrameReader reader;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  std::optional<netbase::TimePoint> send_hold_deadline;

  std::optional<OpenMessage> peer_open;
  netbase::IpAddress socket_address;
  netbase::IpAddress logical_address;
  bgp::Asn peer_asn = 0;
  bool bridged = false;

  StaleRetention retention;
  std::uint64_t messages_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t updates_in = 0;
  std::uint64_t updates_out = 0;
  std::string last_event = "accepted";
};

struct BgpSpeaker::Ghost {
  SessionRef ref;
  StaleRetention retention;
};

struct BgpSpeaker::ActivePeer {
  std::string host;
  std::uint16_t port = 0;
  netbase::TimePoint next_attempt = 0;
  std::uint64_t session_id = 0;  // 0 = not dialed
  int seen_retries = 0;
};

// --- construction ----------------------------------------------------

BgpSpeaker::BgpSpeaker(SpeakerConfig config, bool listen, std::uint16_t port)
    : config_(config) {
  if (!listen) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("zswire: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("zswire: cannot bind BGP port " +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
}

BgpSpeaker::~BgpSpeaker() {
  for (auto& session : sessions_) {
    if (session->fd >= 0) ::close(session->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void BgpSpeaker::connect_to(const std::string& host, std::uint16_t port) {
  std::lock_guard<std::mutex> lock(active_mutex_);
  active_peers_.push_back(ActivePeer{host, port, 0, 0, 0});
}

netbase::TimePoint BgpSpeaker::wall_now() const { return steady_seconds(); }

SessionRef BgpSpeaker::ref_of(const Session& session) const {
  SessionRef ref;
  ref.id = session.id;
  ref.peer_asn = session.peer_asn;
  ref.peer_address = session.logical_address;
  ref.bridged = session.bridged;
  return ref;
}

std::vector<std::uint8_t> BgpSpeaker::encode_local_open() const {
  OpenMessage open;
  open.asn = config_.local_asn;
  open.hold_time = static_cast<std::uint16_t>(
      std::clamp<netbase::Duration>(config_.hold_time, 0, 0xffff));
  open.bgp_id = config_.bgp_id;
  open.cap_four_octet_asn = true;
  open.cap_route_refresh = config_.advertise_route_refresh;
  open.multiprotocol = {{1, 1}, {2, 1}};  // IPv4 + IPv6 unicast
  if (config_.retention.gr_enabled) {
    GracefulRestart gr;
    gr.restart_time = static_cast<std::uint16_t>(
        std::clamp<netbase::Duration>(config_.advertised_restart_time, 0, 0xfff));
    gr.tuples = {{1, 1, true}, {2, 1, true}};
    open.graceful_restart = std::move(gr);
    if (config_.retention.llgr_enabled &&
        config_.advertised_llgr_stale_time > 0) {
      LongLivedGracefulRestart llgr;
      const auto stale = static_cast<std::uint32_t>(std::clamp<netbase::Duration>(
          config_.advertised_llgr_stale_time, 0, 0xffffff));
      llgr.tuples = {{1, 1, stale}, {2, 1, stale}};
      open.llgr = std::move(llgr);
    }
  }
  return open.encode();
}

// --- the poll loop ---------------------------------------------------

void BgpSpeaker::run() {
  while (!stop_.load(std::memory_order_relaxed)) poll_once(50);
  // Graceful exit: tell every peer we are going away.
  const netbase::TimePoint now = wall_now();
  for (auto& session : sessions_) {
    if (session->fd < 0 || session->dead) continue;
    send_notification(*session, NotifyCode::kCease, kCeaseAdminShutdown, now);
    teardown(*session, "administrative stop", now);
  }
  std::erase_if(sessions_, [](const auto& s) { return s->dead; });
  rebuild_snapshot();
}

void BgpSpeaker::dial_due_peers(netbase::TimePoint now) {
  std::lock_guard<std::mutex> lock(active_mutex_);
  for (std::size_t i = 0; i < active_peers_.size(); ++i) {
    ActivePeer& peer = active_peers_[i];
    if (peer.session_id != 0 || now < peer.next_attempt) continue;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      peer.next_attempt = now + std::max<netbase::Duration>(config_.connect_retry, 1);
      continue;
    }
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(peer.port);
    if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      peer.next_attempt = now + std::max<netbase::Duration>(config_.connect_retry, 1);
      continue;
    }
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS) {
      ::close(fd);
      peer.next_attempt = now + std::max<netbase::Duration>(config_.connect_retry, 1);
      continue;
    }
    bgp::FsmConfig fsm_config;
    fsm_config.hold_time = config_.hold_time;
    fsm_config.keepalive_interval = config_.keepalive_interval;
    fsm_config.send_hold_time = config_.send_hold_time;
    fsm_config.connect_retry = config_.connect_retry;
    auto session = std::make_unique<Session>(fsm_config, config_.retention);
    session->id = next_session_id_++;
    session->fd = fd;
    session->passive = false;
    session->connecting = rc < 0;  // EINPROGRESS
    session->active_index = i;
    session->last_event = "dialing " + peer.host + ":" + std::to_string(peer.port);
    session->fsm.start(now);
    if (!session->connecting) {
      session->socket_address = peer_socket_address(fd);
      session->logical_address = session->socket_address;
      session->fsm.connected(now);
    }
    peer.session_id = session->id;
    peer.seen_retries = 0;
    WireMetrics::get().sessions_opened.inc();
    sessions_.push_back(std::move(session));
  }
}

void BgpSpeaker::poll_once(int timeout_ms) {
  const netbase::TimePoint now = wall_now();
  dial_due_peers(now);

  std::vector<pollfd> pfds;
  pfds.reserve(sessions_.size() + 1);
  const bool have_listener = listen_fd_ >= 0;
  if (have_listener) pfds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& session : sessions_) {
    short events = 0;
    if (session->connecting) {
      events = POLLOUT;
    } else {
      events = POLLIN;
      if (session->out_off < session->out.size()) events |= POLLOUT;
    }
    pfds.push_back({session->fd, events, 0});
  }
  ::poll(pfds.data(), pfds.size(), timeout_ms);

  const std::size_t base = have_listener ? 1 : 0;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& session = *sessions_[i];
    const short revents = pfds[base + i].revents;
    if (session.dead) continue;
    if (session.connecting) {
      if ((revents & (POLLOUT | POLLERR | POLLHUP)) == 0) continue;
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(session.fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0 || (revents & (POLLERR | POLLHUP)) != 0) {
        teardown(session, "connect failed", now);
        continue;
      }
      session.connecting = false;
      session.socket_address = peer_socket_address(session.fd);
      session.logical_address = session.socket_address;
      session.fsm.connected(now);
      session.last_event = "connected";
      continue;
    }
    if ((revents & (POLLIN | POLLERR | POLLHUP)) != 0)
      handle_readable(session, now);
  }

  if (have_listener && (pfds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;
      ::fcntl(fd, F_SETFL, O_NONBLOCK);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      bgp::FsmConfig fsm_config;
      fsm_config.hold_time = config_.hold_time;
      fsm_config.keepalive_interval = config_.keepalive_interval;
      fsm_config.send_hold_time = config_.send_hold_time;
      auto session = std::make_unique<Session>(fsm_config, config_.retention);
      session->id = next_session_id_++;
      session->fd = fd;
      session->passive = true;
      session->socket_address = peer_socket_address(fd);
      session->logical_address = session->socket_address;
      session->fsm.start(now);
      session->fsm.connected(now);
      WireMetrics::get().sessions_opened.inc();
      sessions_.push_back(std::move(session));
    }
  }

  // Timers, then outbound bytes for everyone.
  for (auto& sp : sessions_) {
    Session& session = *sp;
    if (session.dead) continue;
    const bgp::FsmState before = session.fsm.state();
    session.fsm.tick(now);
    if (session.fsm.state() != before) sync_fsm_state(session, now);
    if (session.dead) continue;
    // Active dial attempts that outlived the ConnectRetry timer are
    // abandoned and re-dialed by dial_due_peers next round.
    if (session.connecting &&
        session.fsm.connect_retries() > 0) {
      teardown(session, "connect retry", now);
      continue;
    }
    pump_fsm_out(session, now);
    flush_socket(session, now);
    // Socket-level RFC 9687: the peer accepted none of our bytes for
    // send_hold_time.
    if (session.send_hold_deadline.has_value() &&
        now >= *session.send_hold_deadline) {
      send_notification(session, NotifyCode::kSendHoldTimerExpired, 0, now);
      teardown(session, "send hold timer expired (RFC 9687)", now);
    }
  }

  tick_ghosts(now);
  std::erase_if(sessions_, [](const auto& s) { return s->dead; });
  rebuild_snapshot();
}

void BgpSpeaker::handle_readable(Session& session, netbase::TimePoint now) {
  char buf[65536];
  bool closed = false;
  for (;;) {
    const ssize_t n = ::recv(session.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      session.reader.append(reinterpret_cast<const std::uint8_t*>(buf),
                            static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closed = true;
    break;
  }
  try {
    while (auto frame = session.reader.next()) {
      const auto ingest = std::chrono::steady_clock::now();
      handle_frame(session, std::move(*frame), now, ingest);
      if (session.dead) return;
    }
  } catch (const WireError& e) {
    WireMetrics::get().decode_errors.inc();
    send_notification(session, e.code(), e.subcode(), now);
    teardown(session, std::string("decode error: ") + e.what(), now);
    return;
  } catch (const netbase::DecodeError& e) {
    WireMetrics::get().decode_errors.inc();
    send_notification(session, NotifyCode::kMessageHeaderError, 0, now);
    teardown(session, std::string("decode error: ") + e.what(), now);
    return;
  }
  if (closed) teardown(session, "connection closed by peer", now);
}

void BgpSpeaker::handle_frame(Session& session, std::vector<std::uint8_t> frame,
                              netbase::TimePoint now,
                              std::chrono::steady_clock::time_point ingest) {
  ++session.messages_in;
  WireMetrics::get().msgs_in.inc();
  const MessageHeader header = decode_header(frame);
  const bgp::FsmState before = session.fsm.state();
  switch (header.type) {
    case bgp::MessageType::kOpen: {
      OpenMessage open = OpenMessage::decode(frame);
      handle_open(session, std::move(open), now);
      break;
    }
    case bgp::MessageType::kKeepalive:
      session.fsm.receive(now, bgp::FsmMessage{bgp::MessageType::kKeepalive,
                                               std::nullopt, std::nullopt});
      break;
    case bgp::MessageType::kUpdate: {
      bgp::UpdateMessage update = decode_update(frame);
      ++session.updates_in;
      WireMetrics::get().updates_in.inc();
      session.fsm.receive(now, bgp::FsmMessage{bgp::MessageType::kUpdate,
                                               std::nullopt, std::nullopt});
      // End-of-RIB (RFC 4724 §2): the empty UPDATE. After a GR
      // reconnect it sweeps every route the peer did not refresh.
      const bool end_of_rib = update.withdrawn.empty() && update.announced.empty() &&
                              update.attributes == bgp::PathAttributes{};
      if (end_of_rib) {
        auto flushed = session.retention.end_of_rib();
        if (!flushed.empty()) {
          WireMetrics::get().gr_flushed_routes.inc(flushed.size());
          journal_session_event(obs::JournalEventType::kWireGrFlushed,
                                ref_of(session),
                                static_cast<std::int64_t>(flushed.size()),
                                static_cast<std::int64_t>(FlushReason::kEndOfRib));
          session.last_event = "end-of-rib swept " +
                               std::to_string(flushed.size()) + " stale";
          if (on_flush_)
            on_flush_(ref_of(session), std::move(flushed), FlushReason::kEndOfRib);
        }
        break;
      }
      for (const auto& prefix : update.announced)
        session.retention.route_announced(prefix);
      for (const auto& prefix : update.withdrawn)
        session.retention.route_withdrawn(prefix);
      if (on_update_) on_update_(ref_of(session), std::move(update), ingest);
      break;
    }
    case bgp::MessageType::kNotification: {
      const NotificationMessage notification = NotificationMessage::decode(frame);
      WireMetrics::get().notify_in.inc();
      session.peer_notified = true;
      session.last_event = "NOTIFICATION received: " + notification.to_string();
      journal_session_event(obs::JournalEventType::kWireNotifyReceived,
                            ref_of(session),
                            static_cast<std::int64_t>(notification.code),
                            notification.subcode);
      session.fsm.receive(now, bgp::FsmMessage{bgp::MessageType::kNotification,
                                               std::nullopt, std::nullopt});
      break;
    }
  }
  if (!session.dead && session.fsm.state() != before) sync_fsm_state(session, now);
}

void BgpSpeaker::handle_open(Session& session, OpenMessage open,
                             netbase::TimePoint now) {
  session.peer_asn = open.asn;
  session.bridged = open.bridge_peer_address.has_value();
  session.logical_address = session.bridged ? *open.bridge_peer_address
                                            : session.socket_address;
  // Learn the peer's retention windows from its GR/LLGR capabilities.
  netbase::Duration restart_time = 0;
  netbase::Duration llgr_stale = 0;
  if (open.graceful_restart.has_value())
    restart_time = open.graceful_restart->restart_time;
  if (open.llgr.has_value()) {
    for (const LlgrTuple& t : open.llgr->tuples)
      llgr_stale = std::max<netbase::Duration>(llgr_stale, t.stale_time);
  }
  session.retention.set_peer_times(restart_time, llgr_stale);

  // §6.8 collision resolution: a second connection to a peer we are
  // already opening with. The connection initiated by the higher BGP
  // Identifier survives; the other gets Cease/Collision Resolution.
  for (auto& other_ptr : sessions_) {
    Session& other = *other_ptr;
    if (other.id == session.id || other.dead) continue;
    if (!other.peer_open.has_value() && other.passive) continue;
    const bool other_openish = other.fsm.state() == bgp::FsmState::kOpenSent ||
                               other.fsm.state() == bgp::FsmState::kOpenConfirm;
    if (!other_openish) continue;
    const bool same_peer =
        (other.peer_open.has_value() && other.peer_open->bgp_id == open.bgp_id) ||
        (!other.passive && other.socket_address == session.socket_address);
    if (!same_peer) continue;
    WireMetrics::get().collisions.inc();
    // Evaluate for the locally-initiated connection of the pair.
    Session& local_conn = session.passive ? other : session;
    Session& remote_conn = session.passive ? session : other;
    const bool close_ours = bgp::SessionFsm::collision_close_local(
        config_.bgp_id, open.bgp_id, /*local_initiated=*/true);
    Session& loser = close_ours ? local_conn : remote_conn;
    journal_session_event(obs::JournalEventType::kWireCollision, ref_of(session),
                          close_ours ? 0 : 1, static_cast<std::int64_t>(loser.id));
    send_notification(loser, NotifyCode::kCease, kCeaseConnectionCollision, now);
    teardown(loser, "connection collision resolved", now);
    if (loser.id == session.id) return;
    break;
  }

  session.peer_open = std::move(open);
  bgp::FsmOpen fsm_open;
  fsm_open.hold_time = session.peer_open->hold_time;
  fsm_open.bgp_id = session.peer_open->bgp_id;
  fsm_open.asn = session.peer_open->asn;
  session.fsm.receive(now, bgp::FsmMessage{bgp::MessageType::kOpen, std::nullopt,
                                           fsm_open});
  session.last_event = "OPEN from AS" + std::to_string(session.peer_asn);
}

void BgpSpeaker::sync_fsm_state(Session& session, netbase::TimePoint now) {
  const bgp::FsmState old_state = session.prev_state;
  const bgp::FsmState new_state = session.fsm.state();
  if (old_state == new_state) return;
  session.prev_state = new_state;
  journal_session_event(obs::JournalEventType::kWireSessionState, ref_of(session),
                        static_cast<std::int64_t>(old_state),
                        static_cast<std::int64_t>(new_state));
  if (new_state == bgp::FsmState::kEstablished) {
    session.was_established = true;
    session.last_event = "established";
    // A GR peer returning: its ghost's stale routes come home to this
    // session, awaiting re-announcement or the End-of-RIB sweep.
    adopt_or_create_retention(session);
    if (on_state_)
      on_state_(ref_of(session), mrt_state(old_state), mrt_state(new_state),
                false);
    return;
  }
  if (old_state == bgp::FsmState::kEstablished &&
      new_state == bgp::FsmState::kIdle) {
    // The FSM decided the drop (hold timer, send-hold, NOTIFICATION);
    // close the transport to match.
    teardown(session, session.fsm.last_error(), now);
  }
}

void BgpSpeaker::adopt_or_create_retention(Session& session) {
  for (std::size_t i = 0; i < ghosts_.size(); ++i) {
    Ghost& ghost = ghosts_[i];
    if (ghost.ref.peer_asn != session.peer_asn ||
        !(ghost.ref.peer_address == session.logical_address))
      continue;
    WireMetrics::get().stale_routes.add(
        -static_cast<std::int64_t>(session.retention.stale_count()));
    session.retention = std::move(ghost.retention);
    session.retention.session_up(wall_now());
    session.last_event = "GR reconnect: " +
                         std::to_string(session.retention.stale_count()) +
                         " stale await re-sync";
    ghosts_.erase(ghosts_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
}

void BgpSpeaker::pump_fsm_out(Session& session, netbase::TimePoint now) {
  for (bgp::FsmMessage& message : session.fsm.drain(now, 64)) {
    switch (message.type) {
      case bgp::MessageType::kOpen: {
        const auto wire = encode_local_open();
        session.out.insert(session.out.end(), wire.begin(), wire.end());
        break;
      }
      case bgp::MessageType::kKeepalive: {
        const auto wire = encode_keepalive();
        session.out.insert(session.out.end(), wire.begin(), wire.end());
        break;
      }
      case bgp::MessageType::kUpdate: {
        if (!message.update.has_value()) break;
        const auto wire = encode_update(*message.update);
        session.out.insert(session.out.end(), wire.begin(), wire.end());
        ++session.updates_out;
        break;
      }
      case bgp::MessageType::kNotification:
        break;  // NOTIFICATIONs are sent via send_notification()
    }
    ++session.messages_out;
    WireMetrics::get().msgs_out.inc();
  }
  if (session.out_off < session.out.size() &&
      config_.send_hold_time > 0 && !session.send_hold_deadline.has_value())
    session.send_hold_deadline = now + config_.send_hold_time;
}

void BgpSpeaker::flush_socket(Session& session, netbase::TimePoint now) {
  if (session.fd < 0) return;
  bool progress = false;
  while (session.out_off < session.out.size()) {
    const ssize_t n = ::send(session.fd, session.out.data() + session.out_off,
                             session.out.size() - session.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      session.out_off += static_cast<std::size_t>(n);
      progress = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    teardown(session, "send failed", now);
    return;
  }
  if (session.out_off >= session.out.size()) {
    session.out.clear();
    session.out_off = 0;
    session.send_hold_deadline.reset();
  } else if (progress && config_.send_hold_time > 0) {
    // RFC 9687: any accepted byte restarts the send-hold window.
    session.send_hold_deadline = now + config_.send_hold_time;
  }
}

void BgpSpeaker::send_notification(Session& session, NotifyCode code,
                                   std::uint8_t subcode, netbase::TimePoint now) {
  if (session.fd < 0 || session.peer_notified) return;
  NotificationMessage notification;
  notification.code = code;
  notification.subcode = subcode;
  const auto wire = notification.encode();
  session.out.insert(session.out.end(), wire.begin(), wire.end());
  flush_socket(session, now);  // best effort; a wedged peer gets nothing
  WireMetrics::get().notify_out.inc();
  session.last_event = "NOTIFICATION sent: " + notification.to_string();
  journal_session_event(obs::JournalEventType::kWireNotifySent, ref_of(session),
                        static_cast<std::int64_t>(code), subcode);
}

void BgpSpeaker::teardown(Session& session, const std::string& reason,
                          netbase::TimePoint now) {
  if (session.dead) return;
  session.dead = true;
  if (session.fd >= 0) {
    ::close(session.fd);
    session.fd = -1;
  }
  WireMetrics::get().sessions_closed.inc();
  session.last_event = reason;
  // Free the active-peer slot for a re-dial.
  if (session.active_index != static_cast<std::size_t>(-1)) {
    std::lock_guard<std::mutex> lock(active_mutex_);
    if (session.active_index < active_peers_.size() &&
        active_peers_[session.active_index].session_id == session.id) {
      active_peers_[session.active_index].session_id = 0;
      active_peers_[session.active_index].next_attempt =
          now + std::max<netbase::Duration>(config_.connect_retry, 1);
    }
  }
  if (!session.was_established) return;
  session.was_established = false;

  const SessionRef ref = ref_of(session);
  const bool retained = session.retention.session_down(now);
  if (retained) {
    WireMetrics::get().gr_retained_routes.inc(session.retention.stale_count());
    WireMetrics::get().stale_routes.add(
        static_cast<std::int64_t>(session.retention.stale_count()));
    journal_session_event(
        obs::JournalEventType::kWireGrRetained, ref,
        static_cast<std::int64_t>(session.retention.stale_count()),
        session.retention.deadline());
    ghosts_.push_back(Ghost{ref, std::move(session.retention)});
  }
  journal_session_event(obs::JournalEventType::kWireSessionState, ref,
                        static_cast<std::int64_t>(bgp::FsmState::kEstablished),
                        static_cast<std::int64_t>(bgp::FsmState::kIdle));
  if (on_state_)
    on_state_(ref, bgp::SessionState::kEstablished, bgp::SessionState::kIdle,
              retained);
}

void BgpSpeaker::tick_ghosts(netbase::TimePoint now) {
  for (auto it = ghosts_.begin(); it != ghosts_.end();) {
    auto flushed = it->retention.tick(now);
    if (flushed.empty()) {
      ++it;
      continue;
    }
    WireMetrics::get().gr_flushed_routes.inc(flushed.size());
    WireMetrics::get().stale_routes.add(-static_cast<std::int64_t>(flushed.size()));
    const FlushReason reason = it->retention.last_flush_reason();
    journal_session_event(obs::JournalEventType::kWireGrFlushed, it->ref,
                          static_cast<std::int64_t>(flushed.size()),
                          static_cast<std::int64_t>(reason));
    if (on_flush_) on_flush_(it->ref, std::move(flushed), reason);
    it = ghosts_.erase(it);
  }
}

// --- snapshots -------------------------------------------------------

void BgpSpeaker::rebuild_snapshot() {
  std::vector<SessionSnapshot> rows;
  rows.reserve(sessions_.size() + ghosts_.size());
  std::size_t established = 0;
  for (const auto& sp : sessions_) {
    const Session& session = *sp;
    SessionSnapshot row;
    row.id = session.id;
    row.passive = session.passive;
    row.bridged = session.bridged;
    row.state = bgp::to_string(session.fsm.state());
    if (session.fsm.state() == bgp::FsmState::kEstablished) ++established;
    row.peer_asn = session.peer_asn;
    row.peer_address = session.logical_address.to_string();
    row.peer_bgp_id = session.peer_open.has_value() ? session.peer_open->bgp_id : 0;
    row.negotiated_hold = session.fsm.negotiated_hold_time();
    row.gr = session.peer_open.has_value() &&
             session.peer_open->graceful_restart.has_value();
    row.llgr = session.peer_open.has_value() && session.peer_open->llgr.has_value();
    row.messages_in = session.messages_in;
    row.messages_out = session.messages_out;
    row.updates_in = session.updates_in;
    row.updates_out = session.updates_out;
    row.routes = session.retention.routes();
    row.stale_routes = session.retention.stale_count();
    row.last_event = session.last_event;
    rows.push_back(std::move(row));
  }
  for (const Ghost& ghost : ghosts_) {
    SessionSnapshot row;
    row.id = ghost.ref.id;
    row.bridged = ghost.ref.bridged;
    row.state = "GrStale";
    row.peer_asn = ghost.ref.peer_asn;
    row.peer_address = ghost.ref.peer_address.to_string();
    row.routes = ghost.retention.routes();
    row.stale_routes = ghost.retention.stale_count();
    row.last_event = "GR retention until t+" +
                     std::to_string(ghost.retention.deadline());
    rows.push_back(std::move(row));
  }
  std::lock_guard<std::mutex> lock(snap_mutex_);
  snap_ = std::move(rows);
  snap_established_ = established;
}

std::vector<SessionSnapshot> BgpSpeaker::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mutex_);
  return snap_;
}

std::size_t BgpSpeaker::established_count() const {
  std::lock_guard<std::mutex> lock(snap_mutex_);
  return snap_established_;
}

std::string BgpSpeaker::sessions_json() const {
  const auto rows = snapshot();
  std::size_t established = 0;
  std::size_t stale = 0;
  for (const auto& row : rows) {
    if (row.state == "Established") ++established;
    stale += row.stale_routes;
  }
  std::string out = "{\"local_asn\":" + std::to_string(config_.local_asn) +
                    ",\"established\":" + std::to_string(established) +
                    ",\"stale_routes\":" + std::to_string(stale) +
                    ",\"sessions\":[";
  bool first = true;
  for (const auto& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(row.id);
    out += ",\"role\":\"";
    out += row.state == "GrStale" ? "ghost" : (row.passive ? "passive" : "active");
    out += "\",\"bridged\":";
    out += row.bridged ? "true" : "false";
    out += ",\"state\":\"";
    append_json_escaped(out, row.state);
    out += "\",\"asn\":" + std::to_string(row.peer_asn);
    out += ",\"address\":\"";
    append_json_escaped(out, row.peer_address);
    out += "\",\"hold\":" + std::to_string(row.negotiated_hold);
    out += ",\"gr\":";
    out += row.gr ? "true" : "false";
    out += ",\"llgr\":";
    out += row.llgr ? "true" : "false";
    out += ",\"messages_in\":" + std::to_string(row.messages_in);
    out += ",\"messages_out\":" + std::to_string(row.messages_out);
    out += ",\"updates_in\":" + std::to_string(row.updates_in);
    out += ",\"routes\":" + std::to_string(row.routes);
    out += ",\"stale\":" + std::to_string(row.stale_routes);
    out += ",\"last_event\":\"";
    append_json_escaped(out, row.last_event);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace zombiescope::wire

file(REMOVE_RECURSE
  "CMakeFiles/rost_test.dir/rost_test.cpp.o"
  "CMakeFiles/rost_test.dir/rost_test.cpp.o.d"
  "rost_test"
  "rost_test.pdb"
  "rost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

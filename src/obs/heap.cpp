#include "obs/heap.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

#if ZS_HEAP_ENABLED
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <new>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#endif

// Interposition wants glibc's __libc_malloc family as the backing
// allocator (no dlsym bootstrap problem) and must never compete with a
// sanitizer runtime, which interposes malloc itself. Sanitized builds
// therefore compile the strong-symbol overrides out entirely; the
// runtime check in interposition_available() additionally catches a
// sanitizer runtime linked into a binary whose heap.cpp was compiled
// clean (weak __asan/__tsan/__msan symbols resolve non-null).
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer) || __has_feature(leak_sanitizer)
#define ZS_HEAP_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ZS_HEAP_UNDER_SANITIZER 1
#endif
#ifndef ZS_HEAP_UNDER_SANITIZER
#define ZS_HEAP_UNDER_SANITIZER 0
#endif

#if ZS_HEAP_ENABLED && defined(__GLIBC__) && defined(__linux__) && \
    !ZS_HEAP_UNDER_SANITIZER
#define ZS_HEAP_INTERPOSE 1
#else
#define ZS_HEAP_INTERPOSE 0
#endif

#if ZS_HEAP_ENABLED
#include <malloc.h>  // malloc_usable_size

// Weak references to the sanitizer runtimes' init entry points: when a
// sanitizer runtime is linked anywhere in the process these resolve
// non-null and zsheap refuses to start (DESIGN.md §7).
extern "C" {
__attribute__((weak)) void __asan_init();
__attribute__((weak)) void __tsan_init();
__attribute__((weak)) void __msan_init();
}
#endif

#if ZS_HEAP_INTERPOSE
// glibc's public backing allocator, callable from inside the
// interposed symbols without recursing through them.
extern "C" {
void* __libc_malloc(std::size_t size);
void __libc_free(void* ptr);
void* __libc_calloc(std::size_t n, std::size_t size);
void* __libc_realloc(void* ptr, std::size_t size);
void* __libc_memalign(std::size_t alignment, std::size_t size);
}
#endif

// The frame-pointer walk deliberately reads raw stack memory
// (bounds-checked against the thread's stack segment); keep the
// sanitizers out of it like prof.cpp does.
#if defined(__GNUC__) || defined(__clang__)
#define ZS_HEAP_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#else
#define ZS_HEAP_NO_SANITIZE
#endif

namespace zombiescope::obs {

namespace {

std::string heap_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string heap_format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// The size-class histogram's JSON/report label for class i: its upper
/// bound in bytes, "big" for the overflow class.
std::string size_class_label(std::size_t i) {
  if (i + 1 >= kHeapSizeClasses) return "big";
  return std::to_string(std::size_t{16} << i);
}

}  // namespace

// ---------------------------------------------------------------------------
// Report rendering (pure data; compiled in both ZS_HEAP_ENABLED modes).

std::string HeapReport::to_folded() const {
  std::string out;
  for (const HeapSite& site : top_sites) {
    out += site.stack;
    out += ' ';
    out += std::to_string(site.bytes);
    out += '\n';
  }
  return out;
}

std::string HeapReport::top_report(std::size_t n) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "== zsheap: %" PRIu64 " alloc(s), %" PRIu64
                " bytes over %.2f s (peak live +%" PRIu64 " bytes, %" PRIu64
                " sampled stacks, %" PRIu64 " dropped)\n",
                allocs, total_bytes, duration_s, peak_live_bytes, samples,
                dropped);
  out += buf;
  if (!span_bytes.empty()) {
    out += "== per-span allocation shares (exhaustive)\n";
    std::vector<std::pair<std::string, HeapSpanAlloc>> spans(span_bytes.begin(),
                                                             span_bytes.end());
    std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
      return a.second.bytes > b.second.bytes;
    });
    for (const auto& [name, alloc] : spans) {
      const double share = total_bytes == 0
                               ? 0.0
                               : static_cast<double>(alloc.bytes) /
                                     static_cast<double>(total_bytes);
      std::snprintf(buf, sizeof(buf),
                    "  %6.2f%%  %14" PRIu64 " B  %10" PRIu64 "  %s\n",
                    100.0 * share, alloc.bytes, alloc.allocs, name.c_str());
      out += buf;
    }
  }
  if (!top_sites.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "== top allocation sites (1-in-%" PRIu64
                  " sampled bytes / allocs)\n",
                  sample_every);
    out += buf;
    std::size_t shown = 0;
    for (const HeapSite& site : top_sites) {
      if (++shown > n) break;
      const double share = sampled_bytes == 0
                               ? 0.0
                               : static_cast<double>(site.bytes) /
                                     static_cast<double>(sampled_bytes);
      std::snprintf(buf, sizeof(buf),
                    "  %6.2f%%  %12" PRIu64 " B  %8" PRIu64 "  %s\n",
                    100.0 * share, site.bytes, site.allocs, site.stack.c_str());
      out += buf;
    }
  }
  return out;
}

std::string HeapReport::to_json(std::size_t top_n) const {
  std::string out = "{\"schema\": \"zsheap-v1\"";
  out += ", \"valid\": " + std::string(valid ? "true" : "false");
  out += ", \"duration_s\": " + heap_format_double(duration_s);
  out += ", \"sample_every\": " + std::to_string(sample_every);
  out += ", \"total_bytes\": " + std::to_string(total_bytes);
  out += ", \"allocs\": " + std::to_string(allocs);
  out += ", \"frees\": " + std::to_string(frees);
  out += ", \"freed_bytes\": " + std::to_string(freed_bytes);
  out += ", \"live_bytes\": " + std::to_string(live_bytes);
  out += ", \"peak_live_bytes\": " + std::to_string(peak_live_bytes);
  out += ", \"samples\": " + std::to_string(samples);
  out += ", \"sampled_bytes\": " + std::to_string(sampled_bytes);
  out += ", \"dropped\": " + std::to_string(dropped);
  out += ", \"size_class_allocs\": {";
  bool first = true;
  for (std::size_t i = 0; i < kHeapSizeClasses; ++i) {
    if (size_class_allocs[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + size_class_label(i) +
           "\": " + std::to_string(size_class_allocs[i]);
  }
  out += "}, \"spans\": {";
  first = true;
  for (const auto& [name, alloc] : span_bytes) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + heap_json_escape(name) +
           "\": {\"bytes\": " + std::to_string(alloc.bytes) +
           ", \"allocs\": " + std::to_string(alloc.allocs) + "}";
  }
  out += "}, \"top_sites\": [";
  std::size_t shown = 0;
  for (const HeapSite& site : top_sites) {
    if (shown >= top_n) break;
    if (shown != 0) out += ", ";
    ++shown;
    out += "{\"stack\": \"" + heap_json_escape(site.stack) +
           "\", \"bytes\": " + std::to_string(site.bytes) +
           ", \"allocs\": " + std::to_string(site.allocs) + "}";
  }
  out += "]}";
  return out;
}

#if ZS_HEAP_ENABLED

namespace {

bool sanitizer_runtime_linked() {
  return &__asan_init != nullptr || &__tsan_init != nullptr ||
         &__msan_init != nullptr;
}

/// Interned span names live forever, so attribution cells can key on
/// the pointer and reports can read the text long after the span died.
const char* heap_intern_name(std::string_view name) {
  static std::mutex mutex;
  static auto* names = new std::unordered_set<std::string>();
  std::lock_guard lock(mutex);
  return names->emplace(name).first->c_str();
}

}  // namespace

#endif  // ZS_HEAP_ENABLED

#if ZS_HEAP_INTERPOSE

// ---------------------------------------------------------------------------
// Thread state and the accounting hooks.

namespace {

constexpr std::size_t kMaxFrames = 32;
constexpr std::size_t kMaxSpanDepth = 16;

/// One sampled allocation: the usable size, the innermost active span,
/// and the raw frame-pointer stack. Trivially copyable so the ring
/// moves plain bytes.
struct RawAllocSample {
  std::uint64_t bytes = 0;
  const char* span = nullptr;
  std::uint32_t n_pcs = 0;
  std::uintptr_t pcs[kMaxFrames];
};

/// SPSC ring: producer is the owner thread's allocation hook, consumer
/// is stop() on whichever thread ends the session. Allocated from
/// __libc_malloc and never freed (a thread may die mid-session).
struct AllocSampleRing {
  RawAllocSample* slots = nullptr;
  std::size_t mask = 0;
  alignas(64) std::atomic<std::uint64_t> head{0};
  alignas(64) std::atomic<std::uint64_t> tail{0};
};

AllocSampleRing* new_sample_ring(std::size_t capacity) {
  std::size_t cap = 64;
  while (cap < capacity) cap <<= 1;
  void* ring_mem = __libc_malloc(sizeof(AllocSampleRing));
  void* slot_mem = __libc_malloc(cap * sizeof(RawAllocSample));
  if (ring_mem == nullptr || slot_mem == nullptr) {
    __libc_free(ring_mem);
    __libc_free(slot_mem);
    return nullptr;
  }
  auto* ring = new (ring_mem) AllocSampleRing();
  ring->slots = static_cast<RawAllocSample*>(slot_mem);
  ring->mask = cap - 1;
  return ring;
}

/// Owner-thread increment of a counter that stop() reads cross-thread:
/// a relaxed load+store pair compiles to a plain add (no lock prefix)
/// because the owner is the only writer — this is what keeps the
/// active-session hot path cheap enough for the <5% bench bound.
inline void bump(std::atomic<std::uint64_t>& cell, std::uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

struct HeapThreadState {
  // Exhaustive counters, owner-written (bump), aggregated by stop().
  std::atomic<std::uint64_t> total_bytes{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> freed_bytes{0};
  std::atomic<std::uint64_t> size_class[kHeapSizeClasses] = {};

  // Per-span attribution: a small open-address table keyed by the
  // interned name pointer. Spans are few (tens per process); overflow
  // lands in a catch-all bucket so the table never grows in the hook.
  static constexpr std::size_t kSpanSlots = 64;
  std::atomic<const char*> span_name[kSpanSlots] = {};
  std::atomic<std::uint64_t> span_bytes[kSpanSlots] = {};
  std::atomic<std::uint64_t> span_allocs[kSpanSlots] = {};
  std::atomic<std::uint64_t> span_other_bytes{0};
  std::atomic<std::uint64_t> span_other_allocs{0};
  std::atomic<std::uint64_t> unattributed_bytes{0};
  std::atomic<std::uint64_t> unattributed_allocs{0};

  // Active-span stack, maintained by heap_push_span/heap_pop_span on
  // the owner thread and read by the allocation hook on the same
  // thread — the same two-relaxed-stores discipline as prof.cpp's
  // ThreadState (signal fences order the name store before the depth
  // store, so a mid-push hook never reads a stale name).
  const char* span_stack[kMaxSpanDepth] = {};
  std::atomic<std::uint32_t> span_depth{0};

  // 1-in-N stack sampling.
  std::atomic<std::uint64_t> countdown{0};
  std::atomic<AllocSampleRing*> ring{nullptr};

  // Stack segment bounds for the frame-pointer walk.
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
};

// Every thread that ever touched the profiler. Entries (and their
// rings) are never freed: a hook may race a thread exiting, so
// reclamation would be unsound; the leak is a few KB per thread.
std::mutex g_heap_threads_mutex;
std::vector<HeapThreadState*>& heap_thread_registry() {
  static auto* v = new std::vector<HeapThreadState*>();
  return *v;
}

// The hook fast path reads only these. All constant-initialized so an
// allocation before dynamic initialization (dlopen, iostream setup)
// sees a coherent "inactive" state.
constinit std::atomic<bool> g_heap_active{false};
constinit std::atomic<std::uint64_t> g_heap_sample_every{1024};
constinit std::atomic<std::int64_t> g_heap_live{0};
constinit std::atomic<std::uint64_t> g_heap_peak{0};
constinit std::atomic<std::uint64_t> g_heap_sample_drops{0};
std::size_t g_heap_ring_capacity = 4096;  // active session's option

// Reentrancy guard: internal allocations (thread-state setup,
// pthread_getattr_np's /proc read) route through the interposed
// symbols too; the guard keeps them out of the accounting. Plain POD
// thread_locals so first access never allocates.
thread_local bool t_heap_in_hook = false;
thread_local HeapThreadState* t_heap = nullptr;

void heap_thread_stack_bounds(std::uintptr_t& lo, std::uintptr_t& hi) {
  lo = 0;
  hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    lo = reinterpret_cast<std::uintptr_t>(addr);
    hi = lo + size;
  }
  pthread_attr_destroy(&attr);
}

HeapThreadState* ensure_heap_thread() {
  HeapThreadState* ts = t_heap;
  if (ts != nullptr) return ts;
  const bool saved = t_heap_in_hook;
  t_heap_in_hook = true;
  void* mem = __libc_malloc(sizeof(HeapThreadState));
  if (mem == nullptr) {
    t_heap_in_hook = saved;
    return nullptr;
  }
  ts = new (mem) HeapThreadState();
  heap_thread_stack_bounds(ts->stack_lo, ts->stack_hi);
  ts->countdown.store(g_heap_sample_every.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  {
    std::lock_guard lock(g_heap_threads_mutex);
    heap_thread_registry().push_back(ts);
    if (g_heap_active.load(std::memory_order_relaxed))
      ts->ring.store(new_sample_ring(g_heap_ring_capacity),
                     std::memory_order_release);
  }
  t_heap_in_hook = saved;
  t_heap = ts;
  return ts;
}

/// Requested-size histogram class: i covers sizes <= 16 << i, the last
/// class is the overflow bucket.
inline std::size_t size_class_of(std::size_t size) {
  if (size <= 16) return 0;
  const std::size_t bits =
      64u - static_cast<std::size_t>(
                __builtin_clzll(static_cast<unsigned long long>(size - 1)));
  const std::size_t cls = bits - 4;
  return cls < kHeapSizeClasses ? cls : kHeapSizeClasses - 1;
}

/// FP-chain walk from the hook itself — bounds-checked against the
/// thread's stack segment exactly like prof.cpp's walker: every frame
/// must lie inside the segment, be pointer-aligned, and move strictly
/// upward, so a corrupt chain terminates the walk, it cannot fault.
ZS_HEAP_NO_SANITIZE
std::uint32_t heap_capture_stack(const HeapThreadState* ts,
                                 std::uintptr_t* pcs) {
  std::uintptr_t fp =
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  const std::uintptr_t lo = ts->stack_lo;
  const std::uintptr_t hi = ts->stack_hi;
  std::uint32_t n = 0;
  while (n < kMaxFrames && fp >= lo && hi >= 2 * sizeof(std::uintptr_t) &&
         fp <= hi - 2 * sizeof(std::uintptr_t) &&
         (fp & (sizeof(std::uintptr_t) - 1)) == 0) {
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    const std::uintptr_t next = frame[0];
    if (ret < 0x1000) break;  // not a plausible return address
    pcs[n++] = ret;
    if (next <= fp) break;  // frames must move up the stack
    fp = next;
  }
  return n;
}

/// The innermost active span of the calling thread (nullptr if none) —
/// two relaxed loads mirroring the push side's two relaxed stores.
inline const char* innermost_span(const HeapThreadState* ts) {
  std::uint32_t depth = ts->span_depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (depth == 0) return nullptr;
  if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
  return ts->span_stack[depth - 1];
}

void attribute_span(HeapThreadState* ts, const char* span, std::uint64_t bytes) {
  if (span == nullptr) {
    bump(ts->unattributed_bytes, bytes);
    bump(ts->unattributed_allocs, 1);
    return;
  }
  const std::uintptr_t key = reinterpret_cast<std::uintptr_t>(span);
  std::size_t slot = (key >> 4) * 0x9E3779B97F4A7C15ull >>
                     (64 - 6);  // 2^6 == kSpanSlots
  for (std::size_t probe = 0; probe < HeapThreadState::kSpanSlots; ++probe) {
    const char* existing = ts->span_name[slot].load(std::memory_order_relaxed);
    if (existing == nullptr) {
      // Owner thread is the only writer; the relaxed store publishes
      // the slot for stop()'s cross-thread read.
      ts->span_name[slot].store(span, std::memory_order_relaxed);
      existing = span;
    }
    if (existing == span) {
      bump(ts->span_bytes[slot], bytes);
      bump(ts->span_allocs[slot], 1);
      return;
    }
    slot = (slot + 1) & (HeapThreadState::kSpanSlots - 1);
  }
  bump(ts->span_other_bytes, bytes);
  bump(ts->span_other_allocs, 1);
}

ZS_HEAP_NO_SANITIZE
void maybe_sample(HeapThreadState* ts, const char* span, std::uint64_t bytes) {
  const std::uint64_t countdown =
      ts->countdown.load(std::memory_order_relaxed);
  if (countdown == 0) return;  // sampling disabled (sample_every == 0)
  if (countdown > 1) {
    ts->countdown.store(countdown - 1, std::memory_order_relaxed);
    return;
  }
  ts->countdown.store(g_heap_sample_every.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  AllocSampleRing* ring = ts->ring.load(std::memory_order_acquire);
  if (ring == nullptr) {
    g_heap_sample_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail > ring->mask) {  // full: drop, never wait
    g_heap_sample_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RawAllocSample& sample = ring->slots[head & ring->mask];
  sample.bytes = bytes;
  sample.span = span;
  sample.n_pcs = heap_capture_stack(ts, sample.pcs);
  ring->head.store(head + 1, std::memory_order_release);
}

}  // namespace

namespace heap_detail {

/// The accounting hook behind every interposed allocation entry point.
/// Inactive sessions cost one relaxed load; active ones do per-thread
/// plain-add counters plus one global fetch_add for live/peak.
void note_alloc(void* ptr, std::size_t requested) noexcept {
  if (!g_heap_active.load(std::memory_order_relaxed)) return;
  if (ptr == nullptr || t_heap_in_hook) return;
  HeapThreadState* ts = ensure_heap_thread();
  if (ts == nullptr) return;
  t_heap_in_hook = true;
  const std::uint64_t usable = malloc_usable_size(ptr);
  bump(ts->total_bytes, usable);
  bump(ts->allocs, 1);
  bump(ts->size_class[size_class_of(requested)], 1);
  const char* span = innermost_span(ts);
  attribute_span(ts, span, usable);
  const std::int64_t live =
      g_heap_live.fetch_add(static_cast<std::int64_t>(usable),
                            std::memory_order_relaxed) +
      static_cast<std::int64_t>(usable);
  if (live > 0) {
    const auto live_u = static_cast<std::uint64_t>(live);
    std::uint64_t peak = g_heap_peak.load(std::memory_order_relaxed);
    while (live_u > peak && !g_heap_peak.compare_exchange_weak(
                                peak, live_u, std::memory_order_relaxed)) {
    }
  }
  maybe_sample(ts, span, usable);
  t_heap_in_hook = false;
}

void note_free_bytes(std::size_t usable) noexcept {
  if (!g_heap_active.load(std::memory_order_relaxed)) return;
  if (t_heap_in_hook) return;
  HeapThreadState* ts = ensure_heap_thread();
  if (ts == nullptr) return;
  t_heap_in_hook = true;
  bump(ts->frees, 1);
  bump(ts->freed_bytes, usable);
  g_heap_live.fetch_sub(static_cast<std::int64_t>(usable),
                        std::memory_order_relaxed);
  t_heap_in_hook = false;
}

void note_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  if (!g_heap_active.load(std::memory_order_relaxed)) return;
  note_free_bytes(malloc_usable_size(ptr));
}

bool active() noexcept {
  return g_heap_active.load(std::memory_order_relaxed);
}

}  // namespace heap_detail

// ---------------------------------------------------------------------------
// Span hooks (called from obs/trace.cpp while a session is active).

bool heap_attribution_active() noexcept {
  return g_heap_active.load(std::memory_order_relaxed);
}

const char* heap_intern(std::string_view name) {
  return heap_intern_name(name);
}

void heap_push_span(const char* interned_name) noexcept {
  HeapThreadState* ts = ensure_heap_thread();
  if (ts == nullptr) return;
  const std::uint32_t depth = ts->span_depth.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) ts->span_stack[depth] = interned_name;
  // The name store must be visible before the depth covers it; the
  // reader is the allocation hook on this same thread, so a signal
  // fence suffices (prof.cpp's SIGPROF discipline, reused verbatim).
  std::atomic_signal_fence(std::memory_order_release);
  ts->span_depth.store(depth + 1, std::memory_order_relaxed);
}

void heap_pop_span() noexcept {
  HeapThreadState* ts = t_heap;
  if (ts == nullptr) return;
  const std::uint32_t depth = ts->span_depth.load(std::memory_order_relaxed);
  if (depth > 0) ts->span_depth.store(depth - 1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Session control, aggregation, symbolization.

namespace {

struct HeapSession {
  bool running = false;
  HeapProfilerOptions options;
  std::chrono::steady_clock::time_point started_at;
};

std::mutex g_heap_control_mutex;  // serializes start()/stop()
HeapSession& heap_session() {
  static auto* s = new HeapSession();
  return *s;
}

/// Sum of the exhaustive per-thread counters (cross-thread relaxed
/// reads of owner-written cells; exact once the session is stopped).
struct HeapTotals {
  std::uint64_t total_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t freed_bytes = 0;
  std::array<std::uint64_t, kHeapSizeClasses> size_class_allocs{};
  std::map<std::string, HeapSpanAlloc> span_bytes;
};

HeapTotals aggregate_totals() {
  HeapTotals totals;
  std::vector<HeapThreadState*> threads;
  {
    std::lock_guard lock(g_heap_threads_mutex);
    threads = heap_thread_registry();
  }
  std::uint64_t other_bytes = 0;
  std::uint64_t other_allocs = 0;
  std::uint64_t none_bytes = 0;
  std::uint64_t none_allocs = 0;
  for (const HeapThreadState* ts : threads) {
    totals.total_bytes += ts->total_bytes.load(std::memory_order_relaxed);
    totals.allocs += ts->allocs.load(std::memory_order_relaxed);
    totals.frees += ts->frees.load(std::memory_order_relaxed);
    totals.freed_bytes += ts->freed_bytes.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kHeapSizeClasses; ++i)
      totals.size_class_allocs[i] +=
          ts->size_class[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < HeapThreadState::kSpanSlots; ++i) {
      const char* name = ts->span_name[i].load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      HeapSpanAlloc& cell = totals.span_bytes[name];
      cell.bytes += ts->span_bytes[i].load(std::memory_order_relaxed);
      cell.allocs += ts->span_allocs[i].load(std::memory_order_relaxed);
    }
    other_bytes += ts->span_other_bytes.load(std::memory_order_relaxed);
    other_allocs += ts->span_other_allocs.load(std::memory_order_relaxed);
    none_bytes += ts->unattributed_bytes.load(std::memory_order_relaxed);
    none_allocs += ts->unattributed_allocs.load(std::memory_order_relaxed);
  }
  if (other_allocs != 0)
    totals.span_bytes["(other spans)"] = {other_bytes, other_allocs};
  if (none_allocs != 0)
    totals.span_bytes["(no span)"] = {none_bytes, none_allocs};
  return totals;
}

std::string heap_symbolize(
    std::uintptr_t pc, std::unordered_map<std::uintptr_t, std::string>& cache) {
  const auto it = cache.find(pc);
  if (it != cache.end()) return it->second;
  std::string name;
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
  } else {
    // No symbol (static function, stripped object): module+offset,
    // resolvable offline with addr2line.
    const char* module = info.dli_fname != nullptr ? info.dli_fname : "?";
    if (const char* slash = std::strrchr(module, '/'); slash != nullptr)
      module = slash + 1;
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(info.dli_fbase);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s+0x%" PRIxPTR, module,
                  base != 0 && pc >= base ? pc - base : pc);
    name = buf;
  }
  // Frames are joined with ';' in folded output; scrub the separator.
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == '\n' || c == '\r') c = ' ';
  }
  cache.emplace(pc, name);
  return name;
}

/// Drains every ring and folds the samples into symbolized sites.
void drain_and_fold(HeapReport& report) {
  std::vector<HeapThreadState*> threads;
  {
    std::lock_guard lock(g_heap_threads_mutex);
    threads = heap_thread_registry();
  }
  // Aggregate by raw (span pointer, pcs) first: symbolization is
  // expensive and identical stacks collapse before it runs.
  using StackKey = std::vector<std::uintptr_t>;
  std::map<StackKey, std::pair<std::uint64_t, std::uint64_t>> aggregate;
  StackKey key;
  for (HeapThreadState* ts : threads) {
    AllocSampleRing* ring = ts->ring.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    while (tail != head) {
      const RawAllocSample& sample = ring->slots[tail & ring->mask];
      key.clear();
      key.reserve(1 + sample.n_pcs);
      key.push_back(reinterpret_cast<std::uintptr_t>(sample.span));
      for (std::uint32_t i = 0; i < sample.n_pcs; ++i)
        key.push_back(sample.pcs[i]);
      auto& cell = aggregate[key];
      cell.first += sample.bytes;
      cell.second += 1;
      report.samples += 1;
      report.sampled_bytes += sample.bytes;
      ++tail;
      ring->tail.store(tail, std::memory_order_release);
    }
  }
  std::unordered_map<std::uintptr_t, std::string> symbol_cache;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> folded;
  for (const auto& [k, cell] : aggregate) {
    // Root-first: the span, then the frames (captured leaf-first).
    std::string stack;
    if (k[0] != 0) stack = reinterpret_cast<const char*>(k[0]);
    const std::size_t n_pcs = k.size() - 1;
    for (std::size_t i = n_pcs; i-- > 0;) {
      if (!stack.empty()) stack += ';';
      stack += heap_symbolize(k[1 + i], symbol_cache);
    }
    if (stack.empty()) stack = "(unknown)";
    auto& f = folded[stack];
    f.first += cell.first;
    f.second += cell.second;
  }
  report.top_sites.reserve(folded.size());
  for (const auto& [stack, cell] : folded)
    report.top_sites.push_back({stack, cell.first, cell.second});
  std::sort(report.top_sites.begin(), report.top_sites.end(),
            [](const HeapSite& a, const HeapSite& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.stack < b.stack;
            });
}

}  // namespace

HeapProfiler& HeapProfiler::global() {
  static auto* profiler = new HeapProfiler();
  return *profiler;
}

bool HeapProfiler::interposition_compiled() { return true; }

bool HeapProfiler::interposition_available() {
  return !sanitizer_runtime_linked();
}

bool HeapProfiler::running() const {
  return g_heap_active.load(std::memory_order_relaxed);
}

std::uint64_t HeapProfiler::allocs_observed() const {
  std::uint64_t sum = 0;
  std::lock_guard lock(g_heap_threads_mutex);
  for (const HeapThreadState* ts : heap_thread_registry())
    sum += ts->allocs.load(std::memory_order_relaxed);
  return sum;
}

bool HeapProfiler::start(const HeapProfilerOptions& options) {
  if (!interposition_available()) return false;
  std::lock_guard control(g_heap_control_mutex);
  HeapSession& s = heap_session();
  if (s.running) return false;

  s.options = options;
  g_heap_sample_every.store(options.sample_every, std::memory_order_relaxed);
  g_heap_live.store(0, std::memory_order_relaxed);
  g_heap_peak.store(0, std::memory_order_relaxed);
  g_heap_sample_drops.store(0, std::memory_order_relaxed);

  // Register the calling thread, then zero every known thread's
  // counters and give it a (drained) ring. No hook is active between
  // sessions, so the cross-thread relaxed stores cannot collide with
  // owner writes.
  ensure_heap_thread();
  {
    std::lock_guard lock(g_heap_threads_mutex);
    g_heap_ring_capacity = options.ring_capacity;
    for (HeapThreadState* ts : heap_thread_registry()) {
      ts->total_bytes.store(0, std::memory_order_relaxed);
      ts->allocs.store(0, std::memory_order_relaxed);
      ts->frees.store(0, std::memory_order_relaxed);
      ts->freed_bytes.store(0, std::memory_order_relaxed);
      for (std::size_t i = 0; i < kHeapSizeClasses; ++i)
        ts->size_class[i].store(0, std::memory_order_relaxed);
      for (std::size_t i = 0; i < HeapThreadState::kSpanSlots; ++i) {
        ts->span_name[i].store(nullptr, std::memory_order_relaxed);
        ts->span_bytes[i].store(0, std::memory_order_relaxed);
        ts->span_allocs[i].store(0, std::memory_order_relaxed);
      }
      ts->span_other_bytes.store(0, std::memory_order_relaxed);
      ts->span_other_allocs.store(0, std::memory_order_relaxed);
      ts->unattributed_bytes.store(0, std::memory_order_relaxed);
      ts->unattributed_allocs.store(0, std::memory_order_relaxed);
      ts->countdown.store(options.sample_every, std::memory_order_relaxed);
      AllocSampleRing* ring = ts->ring.load(std::memory_order_relaxed);
      if (ring == nullptr) {
        ts->ring.store(new_sample_ring(g_heap_ring_capacity),
                       std::memory_order_release);
      } else {
        ring->tail.store(ring->head.load(std::memory_order_acquire),
                         std::memory_order_release);
      }
    }
  }

  s.started_at = std::chrono::steady_clock::now();
  s.running = true;
  g_heap_active.store(true, std::memory_order_relaxed);
  return true;
}

HeapReport HeapProfiler::stop() {
  std::lock_guard control(g_heap_control_mutex);
  HeapSession& s = heap_session();
  if (!s.running) return {};

  g_heap_active.store(false, std::memory_order_relaxed);

  HeapReport report;
  report.valid = true;
  report.sample_every = s.options.sample_every;
  report.duration_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - s.started_at)
                          .count();
  const HeapTotals totals = aggregate_totals();
  report.total_bytes = totals.total_bytes;
  report.allocs = totals.allocs;
  report.frees = totals.frees;
  report.freed_bytes = totals.freed_bytes;
  report.size_class_allocs = totals.size_class_allocs;
  report.span_bytes = totals.span_bytes;
  report.live_bytes = g_heap_live.load(std::memory_order_relaxed);
  report.peak_live_bytes = g_heap_peak.load(std::memory_order_relaxed);
  report.dropped = g_heap_sample_drops.load(std::memory_order_relaxed);
  drain_and_fold(report);

  s.running = false;
  heap_publish_metrics();
  return report;
}

void heap_publish_metrics() {
  // Lazily registered gauges (registration allocates; fine in normal
  // context). Gauges, not counters: they snapshot the current/last
  // session rather than a process-lifetime monotone series.
  static const struct Cells {
    Gauge active = Registry::global().gauge("zs_heap_session_active");
    Gauge total_bytes = Registry::global().gauge("zs_heap_total_bytes");
    Gauge allocs = Registry::global().gauge("zs_heap_allocs");
    Gauge frees = Registry::global().gauge("zs_heap_frees");
    Gauge freed_bytes = Registry::global().gauge("zs_heap_freed_bytes");
    Gauge live_bytes = Registry::global().gauge("zs_heap_live_bytes");
    Gauge peak_live = Registry::global().gauge("zs_heap_peak_live_bytes");
    Gauge drops = Registry::global().gauge("zs_heap_sample_drops");
  } cells;
  const HeapTotals totals = aggregate_totals();
  cells.active.set(g_heap_active.load(std::memory_order_relaxed) ? 1 : 0);
  cells.total_bytes.set(static_cast<std::int64_t>(totals.total_bytes));
  cells.allocs.set(static_cast<std::int64_t>(totals.allocs));
  cells.frees.set(static_cast<std::int64_t>(totals.frees));
  cells.freed_bytes.set(static_cast<std::int64_t>(totals.freed_bytes));
  cells.live_bytes.set(g_heap_live.load(std::memory_order_relaxed));
  cells.peak_live.set(
      static_cast<std::int64_t>(g_heap_peak.load(std::memory_order_relaxed)));
  cells.drops.set(static_cast<std::int64_t>(
      g_heap_sample_drops.load(std::memory_order_relaxed)));
}

}  // namespace zombiescope::obs

// ---------------------------------------------------------------------------
// The interposed allocator symbols. Strong definitions in any binary
// linking zs_obs override glibc's weak malloc family process-wide; the
// backing allocator is always __libc_*, so pointers stay exchangeable
// with code that never heard of zsheap.

extern "C" void* malloc(std::size_t size) noexcept {
  void* ptr = __libc_malloc(size);
  zombiescope::obs::heap_detail::note_alloc(ptr, size);
  return ptr;
}

extern "C" void free(void* ptr) noexcept {
  zombiescope::obs::heap_detail::note_free(ptr);
  __libc_free(ptr);
}

extern "C" void* calloc(std::size_t n, std::size_t size) noexcept {
  void* ptr = __libc_calloc(n, size);
  zombiescope::obs::heap_detail::note_alloc(ptr, n * size);
  return ptr;
}

extern "C" void* realloc(void* ptr, std::size_t size) noexcept {
  const std::size_t old_usable =
      (ptr != nullptr && zombiescope::obs::heap_detail::active())
          ? malloc_usable_size(ptr)
          : 0;
  void* out = __libc_realloc(ptr, size);
  // The old block is gone on success, and also on realloc(p, 0).
  if (ptr != nullptr && (out != nullptr || size == 0))
    zombiescope::obs::heap_detail::note_free_bytes(old_usable);
  if (out != nullptr && size != 0)
    zombiescope::obs::heap_detail::note_alloc(out, size);
  return out;
}

extern "C" void* aligned_alloc(std::size_t alignment, std::size_t size) noexcept {
  void* ptr = __libc_memalign(alignment, size);
  zombiescope::obs::heap_detail::note_alloc(ptr, size);
  return ptr;
}

extern "C" int posix_memalign(void** out, std::size_t alignment,
                              std::size_t size) noexcept {
  if (alignment < sizeof(void*) || (alignment & (alignment - 1)) != 0)
    return EINVAL;
  void* ptr = __libc_memalign(alignment, size);
  if (ptr == nullptr) return ENOMEM;
  zombiescope::obs::heap_detail::note_alloc(ptr, size);
  *out = ptr;
  return 0;
}

// Replaceable operator new/delete, forwarded through the interposed C
// entry points so accounting stays single-path (malloc notes the
// allocation; operator new adds only the bad_alloc contract).

void* operator new(std::size_t size) {
  void* ptr = malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return malloc(size == 0 ? 1 : size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = __libc_memalign(static_cast<std::size_t>(alignment),
                              size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  zombiescope::obs::heap_detail::note_alloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr = __libc_memalign(static_cast<std::size_t>(alignment),
                              size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  zombiescope::obs::heap_detail::note_alloc(ptr, size);
  return ptr;
}

void operator delete(void* ptr) noexcept { free(ptr); }
void operator delete[](void* ptr) noexcept { free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  free(ptr);
}

namespace zombiescope::obs {

#elif ZS_HEAP_ENABLED  // compiled in, but no interposition (sanitizer)

// The sanitizer owns malloc; zsheap's hooks stay inert so the two
// never fight (the hard ASan-conflict rule from ISSUE 6 / DESIGN.md).

bool heap_attribution_active() noexcept { return false; }
const char* heap_intern(std::string_view name) { return heap_intern_name(name); }
void heap_push_span(const char*) noexcept {}
void heap_pop_span() noexcept {}

HeapProfiler& HeapProfiler::global() {
  static auto* profiler = new HeapProfiler();
  return *profiler;
}
bool HeapProfiler::interposition_compiled() { return false; }
bool HeapProfiler::interposition_available() { return false; }
bool HeapProfiler::start(const HeapProfilerOptions&) { return false; }
HeapReport HeapProfiler::stop() { return {}; }
bool HeapProfiler::running() const { return false; }
std::uint64_t HeapProfiler::allocs_observed() const { return 0; }
void heap_publish_metrics() {}

#else  // !ZS_HEAP_ENABLED — every entry point is an inert stub.

HeapProfiler& HeapProfiler::global() {
  static auto* profiler = new HeapProfiler();
  return *profiler;
}
bool HeapProfiler::interposition_compiled() { return false; }
bool HeapProfiler::interposition_available() { return false; }
bool HeapProfiler::start(const HeapProfilerOptions&) { return false; }
HeapReport HeapProfiler::stop() { return {}; }
bool HeapProfiler::running() const { return false; }
std::uint64_t HeapProfiler::allocs_observed() const { return 0; }
void heap_publish_metrics() {}

#endif  // ZS_HEAP_INTERPOSE / ZS_HEAP_ENABLED

ScopedHeapSession::ScopedHeapSession(std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) return;
  if constexpr (!kHeapCompiledIn) {
    std::fprintf(stderr,
                 "--heap-out ignored: allocation profiler compiled out "
                 "(ZS_HEAP_ENABLED=0)\n");
    return;
  }
  if (!HeapProfiler::interposition_available()) {
    std::fprintf(stderr,
                 "--heap-out ignored: allocator interposition unavailable "
                 "(sanitizer build)\n");
    return;
  }
  active_ = HeapProfiler::global().start();
  if (!active_)
    std::fprintf(stderr, "--heap-out ignored: cannot start heap profiler "
                         "(already running?)\n");
}

ScopedHeapSession::~ScopedHeapSession() {
  if (!active_) return;
  const HeapReport report = HeapProfiler::global().stop();
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write heap profile to %s\n",
                 path_.c_str());
  } else {
    const std::string json = report.to_json();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
  }
  std::fprintf(stderr, "%s", report.top_report(15).c_str());
  std::fprintf(stderr,
               "heap profile: %" PRIu64 " alloc(s), %" PRIu64
               " bytes -> %s\n",
               report.allocs, report.total_bytes, path_.c_str());
}

}  // namespace zombiescope::obs

// ablation_noisy_filter — ablates the noisy-peer detection rule
// (probability floor and median multiplier) against the ground-truth
// injected noisy sessions of the 2024 experiment. The paper excludes
// outlier peers manually; the library's NoisyPeerFilter must find the
// same set across a reasonable parameter region — this bench maps
// that region.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/longlived.hpp"
#include "zombie/noisy.hpp"

using namespace zombiescope;

namespace {

scenarios::LongLived2024Output g_out;
std::vector<zombie::ZombieRoute> g_routes;

void print_ablation() {
  bench::print_header("Ablation — noisy-peer filter parameters",
                      "IMC'25 paper §3.2/§5 noisy-peer exclusion rule");
  g_out = bench::load_longlived2024();
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto result = detector.detect(g_out.updates, g_out.events, 90 * netbase::kMinute);
  for (const auto& outbreak : result.outbreaks)
    for (const auto& route : outbreak.routes) g_routes.push_back(route);

  std::vector<std::vector<std::string>> rows;
  for (double floor : {0.01, 0.03, 0.05, 0.10}) {
    for (double multiplier : {2.0, 4.0, 8.0, 16.0}) {
      zombie::NoisyPeerConfig config;
      config.probability_floor = floor;
      config.median_multiplier = multiplier;
      zombie::NoisyPeerFilter filter(config);
      const auto detected =
          filter.noisy_peer_keys(g_routes, g_out.all_peers, g_out.studied_announcements);
      int true_positive = 0, false_positive = 0;
      for (const auto& key : detected)
        (g_out.noisy_peers.contains(key) ? true_positive : false_positive)++;
      const int false_negative =
          static_cast<int>(g_out.noisy_peers.size()) - true_positive;
      rows.push_back({analysis::fmt(floor, 2), analysis::fmt(multiplier, 0),
                      std::to_string(true_positive), std::to_string(false_positive),
                      std::to_string(false_negative),
                      (false_positive == 0 && false_negative == 0) ? "exact" : ""});
    }
  }
  std::fputs(analysis::render_table({"floor", "x median", "true pos", "false pos",
                                     "false neg", "verdict"},
                                    rows)
                 .c_str(),
             stdout);
  std::printf("Ground truth: the 3 injected RRC25 sessions (2x AS211509, 1x AS211380).\n"
              "The filter should be exact across a broad parameter region — the\n"
              "detection is not knife-edge.\n");
}

void BM_NoisyFilter(benchmark::State& state) {
  zombie::NoisyPeerFilter filter;
  for (auto _ : state) {
    auto keys = filter.noisy_peer_keys(g_routes, g_out.all_peers,
                                       g_out.studied_announcements);
    benchmark::DoNotOptimize(keys.size());
  }
}
BENCHMARK(BM_NoisyFilter)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

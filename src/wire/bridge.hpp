// wire/bridge.hpp — the simnet/archive ↔ socket bridge.
//
// Replays an MRT record stream over real BGP-4 sessions so the live
// pipeline behind a BgpSpeaker sees byte-for-byte wire traffic yet
// produces the EXACT same records a batch run reads from the archive.
// Three things must survive the socket hop that plain BGP cannot
// carry, and all three travel as experimental path attributes the
// receiving feed pops before submission (the same sideband trick BMP
// uses for per-peer headers):
//
//   * attr 254 kAttrBridgeStamp  — the archive timestamp (u64) plus a
//     global sequence number (u64). The feed re-orders on the sequence
//     so submission order equals archive order no matter how the
//     kernel interleaves bytes across sessions, and restores the
//     archive timestamp that a live socket would otherwise replace
//     with "now".
//   * attr 253 kAttrBridgeState  — u16 old_state + u16 new_state on an
//     otherwise-empty UPDATE: a Bgp4mpStateChange in transit (BGP has
//     no message for "some other router's session flapped").
//   * OPEN capability 240        — the *logical* peer address (see
//     wire/message.hpp), because every bridge session arrives from
//     127.0.0.1 but PeerKey identity is {asn, peer_address}.
//
// The bridge client opens one session per distinct (peer_asn,
// peer_address) in the input, performs a blocking handshake, then
// streams the records in order.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bgp/update.hpp"
#include "mrt/record.hpp"
#include "netbase/time.hpp"

namespace zombiescope::wire {

/// Experimental (RFC 2042 reserved-for-development range) attribute
/// type codes used only on bridge sessions.
inline constexpr std::uint8_t kAttrBridgeStamp = 254;
inline constexpr std::uint8_t kAttrBridgeState = 253;

struct BridgeStamp {
  netbase::TimePoint timestamp = 0;
  std::uint64_t sequence = 0;
};

/// Adds the stamp attribute to an UPDATE in place.
void stamp_update(bgp::UpdateMessage& update, const BridgeStamp& stamp);

/// Pops the stamp attribute if present; the update is left exactly as
/// the archive had it (required for record-equality with batch runs).
std::optional<BridgeStamp> extract_stamp(bgp::UpdateMessage& update);

/// Builds the empty UPDATE that carries a state change (plus stamp).
bgp::UpdateMessage make_state_update(std::uint16_t old_state,
                                     std::uint16_t new_state,
                                     const BridgeStamp& stamp);

/// Pops the state attribute if present: {old_state, new_state}.
std::optional<std::pair<std::uint16_t, std::uint16_t>> extract_state(
    bgp::UpdateMessage& update);

/// Splits an UPDATE whose encoding would exceed the 4096-byte message
/// ceiling into wire-legal parts (withdrawals first, then announcement
/// chunks sharing the attribute set). Returns {update} unchanged when
/// it already fits.
std::vector<bgp::UpdateMessage> split_update(bgp::UpdateMessage update);

struct BridgeOptions {
  /// Hold time the bridge offers. Generous: replay pacing is bursty.
  netbase::Duration hold_time = 180;
  /// Attach stamp attributes (exact-equivalence mode). Off = raw
  /// replay, timestamps regenerate at the receiver.
  bool stamp = true;
  /// Local ASN used when a record lacks a usable peer ASN.
  std::uint32_t fallback_asn = 64512;
};

struct BridgeStats {
  std::size_t sessions = 0;
  std::size_t updates_sent = 0;
  std::size_t state_changes_sent = 0;
  std::size_t messages_sent = 0;
  std::size_t splits = 0;
  std::uint64_t bytes_sent = 0;
};

/// Blocking handshake on an already-connected socket: send our OPEN
/// (with capability 240 = logical_address when provided), read the
/// collector's OPEN, exchange KEEPALIVEs. Throws std::runtime_error on
/// handshake failure. Shared by replay_over_wire and `zswire peer`.
void wire_handshake(int fd, std::uint32_t asn, std::uint32_t bgp_id,
                    netbase::Duration hold_time,
                    const std::optional<netbase::IpAddress>& logical_address);

/// Connects (blocking) to host:port. Throws on failure; returns the fd.
int wire_connect(const std::string& host, std::uint16_t port);

/// Replays the records against a collector speaker at host:port, one
/// session per distinct (peer_asn, peer_address). Blocking; returns
/// when every record is on the wire and the sessions are closed with
/// Cease/Administrative Shutdown.
BridgeStats replay_over_wire(std::span<const mrt::MrtRecord> records,
                             const std::string& host, std::uint16_t port,
                             const BridgeOptions& options = {});

}  // namespace zombiescope::wire

// Proves ZS_TSDB_ENABLED=0 really compiles the store out: this target
// rebuilds tsdb.cpp with the macro forced to 0 (the whole
// implementation sits inside the #if, so only parse_duration_ms
// survives) and links WITHOUT zs_obs — if any enabled-path symbol
// leaked out of the #if, this binary would fail to link.

#include <gtest/gtest.h>

#include "obs/tsdb.hpp"

namespace zombiescope::obs {
namespace {

TEST(ObsTsdbCompileout, FlagReportsDisabled) {
  static_assert(!kTsdbCompiledIn, "this target must build with ZS_TSDB_ENABLED=0");
  EXPECT_FALSE(kTsdbCompiledIn);
}

TEST(ObsTsdbCompileout, StubsAreInert) {
  Tsdb tsdb;
  tsdb.add_probe("x", SeriesKind::kGauge, [] { return 1.0; });
  tsdb.add_rule(AlertRule{});
  EXPECT_FALSE(tsdb.start());
  EXPECT_FALSE(tsdb.running());
  tsdb.sample_once(0);
  EXPECT_TRUE(tsdb.metric_names().empty());
  const auto q = tsdb.query("x", 1000, 0, false);
  EXPECT_EQ(q.status, Tsdb::QueryStatus::kNotFound);
  EXPECT_TRUE(q.points.empty());
  EXPECT_EQ(tsdb.firing_count(), 0u);
  EXPECT_EQ(tsdb.firing_names(), "");
  EXPECT_EQ(tsdb.alerts_json(), "{}");
  tsdb.stop();
}

TEST(ObsTsdbCompileout, DurationParserSurvives) {
  // The only non-stub symbol the OFF build keeps (tools still parse
  // --tsdb-cadence-ms style flags).
  EXPECT_EQ(parse_duration_ms("30s"), 30'000);
  EXPECT_EQ(parse_duration_ms("nope"), 0);
}

}  // namespace
}  // namespace zombiescope::obs

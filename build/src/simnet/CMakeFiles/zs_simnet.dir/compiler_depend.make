# Empty compiler generated dependencies file for zs_simnet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_rost.dir/ablation_rost.cpp.o"
  "CMakeFiles/ablation_rost.dir/ablation_rost.cpp.o.d"
  "ablation_rost"
  "ablation_rost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// bench/bench_common.hpp — shared infrastructure for the experiment
// harness.
//
// Every bench binary regenerates one table or figure of the paper.
// The underlying scenario runs are deterministic but take tens of
// seconds, so their MRT archives are cached on disk (exactly the
// artifact a real measurement pipeline would store) and reloaded by
// later benches. Delete the cache directory to force re-simulation.

#pragma once

#include <string>

#include "scenarios/longlived2024.hpp"
#include "scenarios/ris_replication.hpp"

namespace zombiescope::bench {

/// Cache directory ($ZS_CACHE_DIR or ./zs_bench_cache).
std::string cache_dir();

/// Loads (or simulates + stores) a replication period. `which` is
/// 0 = 2018-07, 1 = 2017-10, 2 = 2017-03.
scenarios::ScenarioOutput load_ris_period(int which);
scenarios::RisPeriodSpec ris_spec(int which);

/// Loads (or simulates + stores) the 2024 long-lived experiment.
scenarios::LongLived2024Output load_longlived2024();

/// Starts the bench telemetry session: records the wall-clock start,
/// begins a zsprof sampling session (skipped when $ZS_NO_PROF is set
/// or the profiler is compiled out), and begins a zsheap allocation
/// session (skipped when $ZS_NO_HEAP is set, compiled out, or the
/// build runs under a sanitizer). Idempotent; called by print_header,
/// and directly by benches with a custom main.
void begin_bench_session();

/// Prints a section header for the harness output. Also starts the
/// telemetry session and installs the at-exit snapshot (see
/// emit_metrics_snapshot), so every bench binary leaves a
/// BENCH_<tool>.json behind for trajectory diffing.
void print_header(const std::string& title, const std::string& paper_ref);

/// Stops the profiling sessions and writes the global metrics registry
/// (zsobs-v1 JSON: spans, build info, bench name, wall time, peak RSS,
/// a zsprof profile section, and a zsheap heap section) to
/// BENCH_<name>.json in
/// $ZS_BENCH_JSON_DIR (default: the working directory). The JSON is
/// suppressed when $ZS_NO_BENCH_JSON is set. Never throws: a failed
/// snapshot must not fail the bench.
void emit_metrics_snapshot(const std::string& name);

}  // namespace zombiescope::bench

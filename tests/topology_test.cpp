// Tests for the AS-level topology: relationship bookkeeping, customer
// cones, and the hierarchical generator's structural invariants.

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "topology/topology.hpp"

namespace zombiescope::topology {
namespace {

using netbase::Rng;

Topology triangle() {
  Topology topo;
  topo.add_as({10, 1, "T1"});
  topo.add_as({20, 2, "mid"});
  topo.add_as({30, 3, "stub"});
  topo.add_link(10, 20, Relationship::kCustomer);  // 20 is 10's customer
  topo.add_link(20, 30, Relationship::kCustomer);  // 30 is 20's customer
  return topo;
}

TEST(Topology, RelationshipPerspectives) {
  Topology topo = triangle();
  EXPECT_EQ(topo.relationship(10, 20), Relationship::kCustomer);
  EXPECT_EQ(topo.relationship(20, 10), Relationship::kProvider);
  EXPECT_EQ(topo.relationship(10, 30), std::nullopt);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(Topology, RejectsDuplicatesAndSelfLinks) {
  Topology topo = triangle();
  EXPECT_THROW(topo.add_as({10, 1, ""}), std::invalid_argument);
  EXPECT_THROW(topo.add_link(10, 20, Relationship::kPeer), std::invalid_argument);
  EXPECT_THROW(topo.add_link(10, 10, Relationship::kPeer), std::invalid_argument);
  EXPECT_THROW(topo.add_link(10, 999, Relationship::kPeer), std::invalid_argument);
  EXPECT_THROW(topo.info(999), std::invalid_argument);
}

TEST(Topology, CustomerConeIsTransitive) {
  Topology topo = triangle();
  const auto cone10 = topo.customer_cone(10);
  EXPECT_EQ(cone10, (std::set<bgp::Asn>{20, 30}));
  EXPECT_EQ(topo.customer_cone(20), (std::set<bgp::Asn>{30}));
  EXPECT_TRUE(topo.customer_cone(30).empty());
}

TEST(Topology, CustomerConeIgnoresPeersAndHandlesCycles) {
  Topology topo;
  topo.add_as({1, 1, ""});
  topo.add_as({2, 1, ""});
  topo.add_as({3, 2, ""});
  topo.add_link(1, 2, Relationship::kPeer);
  topo.add_link(1, 3, Relationship::kCustomer);
  topo.add_link(2, 3, Relationship::kCustomer);
  EXPECT_EQ(topo.customer_cone(1), (std::set<bgp::Asn>{3}));
}

TEST(Generator, DeterministicUnderSeed) {
  GeneratorParams params;
  params.tier1_count = 4;
  params.tier2_count = 10;
  params.tier3_count = 40;
  Rng rng1(7), rng2(7);
  Topology a = generate_hierarchical(params, rng1);
  Topology b = generate_hierarchical(params, rng2);
  ASSERT_EQ(a.as_count(), b.as_count());
  EXPECT_EQ(a.link_count(), b.link_count());
  for (bgp::Asn asn : a.all_asns()) EXPECT_EQ(a.degree(asn), b.degree(asn)) << asn;
}

TEST(Generator, StructuralInvariants) {
  GeneratorParams params;
  Rng rng(42);
  Topology topo = generate_hierarchical(params, rng);
  EXPECT_EQ(topo.as_count(),
            static_cast<std::size_t>(params.tier1_count + params.tier2_count +
                                     params.tier3_count));

  int tier1_seen = 0;
  for (bgp::Asn asn : topo.all_asns()) {
    const AsInfo& info = topo.info(asn);
    if (info.tier == 1) {
      ++tier1_seen;
      // Tier-1s form a peering clique.
      int t1_peers = 0;
      for (const auto& [n, rel] : topo.neighbors(asn))
        if (topo.info(n).tier == 1) {
          EXPECT_EQ(rel, Relationship::kPeer);
          ++t1_peers;
        }
      EXPECT_EQ(t1_peers, params.tier1_count - 1);
    }
    if (info.tier == 3) {
      // Every stub has at least one provider; stubs never have
      // customers of their own in this generator.
      int providers = 0;
      for (const auto& [n, rel] : topo.neighbors(asn)) {
        (void)n;
        EXPECT_NE(rel, Relationship::kCustomer);
        if (rel == Relationship::kProvider) ++providers;
      }
      EXPECT_GE(providers, params.tier3_providers_min);
    }
  }
  EXPECT_EQ(tier1_seen, params.tier1_count);

  // Tier-1 customer cones dominate: the largest cone must cover a
  // sizable share of the topology (the paper's "dominant AS" notion).
  std::size_t biggest = 0;
  for (bgp::Asn asn : topo.all_asns())
    if (topo.info(asn).tier == 1) biggest = std::max(biggest, topo.customer_cone(asn).size());
  EXPECT_GT(biggest, topo.as_count() / 4);
}

TEST(Generator, EveryAsReachesTier1UpHill) {
  GeneratorParams params;
  params.tier1_count = 3;
  params.tier2_count = 12;
  params.tier3_count = 50;
  Rng rng(1);
  Topology topo = generate_hierarchical(params, rng);
  // Union of all Tier-1 customer cones + Tier-1s = everything.
  std::set<bgp::Asn> covered;
  for (bgp::Asn asn : topo.all_asns()) {
    if (topo.info(asn).tier != 1) continue;
    covered.insert(asn);
    for (bgp::Asn c : topo.customer_cone(asn)) covered.insert(c);
  }
  EXPECT_EQ(covered.size(), topo.as_count());
}

}  // namespace
}  // namespace zombiescope::topology

// Verifies the ZS_HEAP_ENABLED=0 build really compiles the allocation
// profiler out: this target recompiles heap.cpp (plus the
// trace/prof/metrics sources trace.cpp drags in) with the macro forced
// to 0 (see tests/CMakeLists.txt) instead of linking zs_obs. The
// decisive check is symbol-level: malloc must resolve to libc, not to
// an interposed definition in this executable.

#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cstring>

#include "obs/heap.hpp"
#include "obs/trace.hpp"

namespace obs = zombiescope::obs;

static_assert(!obs::kHeapCompiledIn,
              "this test must be built with ZS_HEAP_ENABLED=0");

// Sanitizer runtimes interpose malloc themselves, so symbol-residency
// checks against libc are meaningless there (same weak-symbol runtime
// detection heap.cpp uses).
extern "C" {
__attribute__((weak)) void __asan_init();
__attribute__((weak)) void __tsan_init();
__attribute__((weak)) void __msan_init();
}

namespace {

bool sanitizer_runtime_linked() {
  return &__asan_init != nullptr || &__tsan_init != nullptr ||
         &__msan_init != nullptr;
}

TEST(ObsHeapCompileOut, EveryEntryPointIsInert) {
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  EXPECT_FALSE(obs::HeapProfiler::interposition_compiled());
  EXPECT_FALSE(obs::HeapProfiler::interposition_available());
  EXPECT_FALSE(profiler.start());
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.allocs_observed(), 0u);
  const obs::HeapReport report = profiler.stop();
  EXPECT_FALSE(report.valid);
  EXPECT_EQ(report.allocs, 0u);
}

TEST(ObsHeapCompileOut, HooksAreInlineNoOps) {
  EXPECT_FALSE(obs::heap_attribution_active());
  EXPECT_EQ(obs::heap_intern("anything"), nullptr);
  // Must not crash; these compile to empty inline functions.
  obs::heap_push_span(nullptr);
  obs::heap_pop_span();
  obs::heap_publish_metrics();
}

TEST(ObsHeapCompileOut, NoInterposedAllocatorSymbols) {
  // The proof the issue asks for: with ZS_HEAP_ENABLED=0 this binary
  // must carry no strong malloc/free override, so a global-scope
  // symbol lookup resolves malloc back to libc — not this executable.
  // (dlsym, not &malloc: taking the address in the executable yields
  // its PLT stub, which dladdr attributes to the executable.)
  if (sanitizer_runtime_linked()) {
    GTEST_SKIP() << "a sanitizer runtime owns malloc; libc residency "
                    "cannot be asserted here";
  }
  for (const char* symbol : {"malloc", "free", "calloc", "realloc"}) {
    void* addr = dlsym(RTLD_DEFAULT, symbol);
    ASSERT_NE(addr, nullptr) << symbol;
    Dl_info info{};
    ASSERT_NE(dladdr(addr, &info), 0) << symbol;
    ASSERT_NE(info.dli_fname, nullptr) << symbol;
    EXPECT_NE(std::strstr(info.dli_fname, "libc"), nullptr)
        << symbol << " resolves to " << info.dli_fname
        << " — an interposed definition survived the compile-out";
  }
}

TEST(ObsHeapCompileOut, SpansStillWork) {
  // ScopedSpan guards its heap registration with
  // `if constexpr (kHeapCompiledIn)`, so tracing is unaffected.
  {
    obs::ScopedSpan outer("heap_compileout.outer");
    obs::ScopedSpan inner("heap_compileout.inner");
  }
  const auto spans = obs::Tracer::global().snapshot();
  bool saw_outer = false;
  bool saw_inner = false;
  for (const auto& span : spans) {
    if (span.name == "heap_compileout.outer") saw_outer = true;
    if (span.name == "heap_compileout.inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(ObsHeapCompileOut, ScopedHeapSessionDegradesGracefully) {
  obs::ScopedHeapSession session("/tmp/zs_heap_compileout_never_written");
  EXPECT_FALSE(session.active());
}

TEST(ObsHeapCompileOut, ReportRenderingStillAvailable) {
  // Rendering (used by zsbenchdiff fixtures) stays compiled in even
  // when the hooks are not.
  obs::HeapReport report;
  report.valid = true;
  report.total_bytes = 1024;
  report.allocs = 3;
  report.span_bytes["phase"] = {512, 2};
  report.top_sites.push_back({"phase;site", 256, 1});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"zsheap-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"total_bytes\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"phase\": {\"bytes\": 512"), std::string::npos);
  EXPECT_NE(report.to_folded().find("phase;site 256\n"), std::string::npos);
  EXPECT_NE(report.top_report().find("phase"), std::string::npos);
}

}  // namespace

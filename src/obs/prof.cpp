#include "obs/prof.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if ZS_PROF_ENABLED
#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <time.h>
#include <ucontext.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#endif

// The SIGPROF handler and the frame-pointer walk must not be
// instrumented: sanitizer runtimes are not async-signal-safe, and the
// walk deliberately reads raw stack memory (bounds-checked against the
// thread's stack segment, but inside ASan redzones).
#if defined(__GNUC__) || defined(__clang__)
#define ZS_PROF_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#else
#define ZS_PROF_NO_SANITIZE
#endif

namespace zombiescope::obs {

namespace {

std::string prof_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_share(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Report rendering (pure data; compiled in both ZS_PROF_ENABLED modes).

std::string ProfileReport::to_folded() const {
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::map<std::string, std::uint64_t> parse_folded(std::string_view text) {
  std::map<std::string, std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space + 1 >= line.size()) continue;
    std::uint64_t count = 0;
    bool numeric = true;
    for (char c : line.substr(space + 1)) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric) continue;
    out[std::string(line.substr(0, space))] += count;
  }
  return out;
}

std::string ProfileReport::top_report(std::size_t n) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "== zsprof: %" PRIu64 " sample(s) @ %d Hz over %.2f s (%" PRIu64
                " dropped)\n",
                samples, rate_hz, duration_s, dropped);
  out += buf;
  if (!phase_samples.empty()) {
    out += "== per-phase CPU shares\n";
    std::vector<std::pair<std::string, std::uint64_t>> phases(
        phase_samples.begin(), phase_samples.end());
    std::sort(phases.begin(), phases.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [name, count] : phases) {
      const double share =
          samples == 0 ? 0.0
                       : static_cast<double>(count) / static_cast<double>(samples);
      std::snprintf(buf, sizeof(buf), "  %6.2f%%  %8" PRIu64 "  %s\n",
                    100.0 * share, count, name.c_str());
      out += buf;
    }
  }
  if (!top_frames.empty()) {
    out += "== top frames (self / total samples)\n";
    std::size_t shown = 0;
    for (const auto& frame : top_frames) {
      if (++shown > n) break;
      const double share = samples == 0 ? 0.0
                                        : static_cast<double>(frame.self) /
                                              static_cast<double>(samples);
      std::snprintf(buf, sizeof(buf), "  %6.2f%%  %8" PRIu64 "  %8" PRIu64 "  %s\n",
                    100.0 * share, frame.self, frame.total, frame.symbol.c_str());
      out += buf;
    }
  }
  return out;
}

std::string ProfileReport::to_json(std::size_t top_n) const {
  std::string out = "{\"schema\": \"zsprof-v1\"";
  out += ", \"valid\": " + std::string(valid ? "true" : "false");
  out += ", \"rate_hz\": " + std::to_string(rate_hz);
  out += ", \"duration_s\": " + format_share(duration_s);
  out += ", \"samples\": " + std::to_string(samples);
  out += ", \"dropped\": " + std::to_string(dropped);
  out += ", \"phases\": {";
  bool first = true;
  for (const auto& [name, count] : phase_samples) {
    if (!first) out += ", ";
    first = false;
    const double share =
        samples == 0 ? 0.0
                     : static_cast<double>(count) / static_cast<double>(samples);
    out += "\"" + prof_json_escape(name) + "\": {\"samples\": " +
           std::to_string(count) + ", \"share\": " + format_share(share) + "}";
  }
  out += "}, \"top_frames\": [";
  std::size_t shown = 0;
  for (const auto& frame : top_frames) {
    if (shown >= top_n) break;
    if (shown != 0) out += ", ";
    ++shown;
    out += "{\"symbol\": \"" + prof_json_escape(frame.symbol) +
           "\", \"self\": " + std::to_string(frame.self) +
           ", \"total\": " + std::to_string(frame.total) + "}";
  }
  out += "]}";
  return out;
}

#if ZS_PROF_ENABLED

// ---------------------------------------------------------------------------
// Thread state and the signal handler.

namespace {

constexpr std::size_t kMaxFrames = 48;
constexpr std::size_t kMaxSpanDepth = 16;

/// One captured sample: raw pcs + the active span-name stack, both
/// trivially copyable so the ring moves plain bytes.
struct RawSample {
  std::uint32_t n_pcs = 0;
  std::uint32_t n_spans = 0;
  std::uintptr_t pcs[kMaxFrames];
  const char* spans[kMaxSpanDepth];
};

/// SPSC ring: producer is the SIGPROF handler running on the owner
/// thread, consumer is the drain thread (or stop()).
struct SampleRing {
  explicit SampleRing(std::size_t capacity) {
    std::size_t cap = 64;
    while (cap < capacity) cap <<= 1;
    slots = std::make_unique<RawSample[]>(cap);
    mask = cap - 1;
  }
  std::unique_ptr<RawSample[]> slots;
  std::size_t mask = 0;
  alignas(64) std::atomic<std::uint64_t> head{0};
  alignas(64) std::atomic<std::uint64_t> tail{0};
};

struct ThreadState {
  std::atomic<SampleRing*> ring{nullptr};
  // Active-span stack, maintained by prof_push_span/prof_pop_span on
  // the owner thread and read by the SIGPROF handler on the same
  // thread — signal fences order the two, no cross-thread access.
  const char* span_stack[kMaxSpanDepth] = {};
  std::atomic<std::uint32_t> span_depth{0};
  // Stack segment bounds for the frame-pointer walk.
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
};

// Every thread that ever registered. Entries (and their rings) are
// never freed: the handler may fire concurrently with a thread
// exiting, so reclamation would race; the leak is a few KB per thread
// that ever profiled.
std::mutex g_threads_mutex;
std::vector<ThreadState*>& thread_registry() {
  static auto* v = new std::vector<ThreadState*>();
  return *v;
}

thread_local ThreadState* t_state = nullptr;

std::atomic<bool> g_attribution_active{false};
std::atomic<std::uint64_t> g_lost{0};      // full ring or unregistered thread
std::atomic<std::uint64_t> g_captured{0};  // samples enqueued
std::size_t g_ring_capacity = 4096;        // active session's option

void thread_stack_bounds(std::uintptr_t& lo, std::uintptr_t& hi) {
  lo = 0;
  hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    lo = reinterpret_cast<std::uintptr_t>(addr);
    hi = lo + size;
  }
  pthread_attr_destroy(&attr);
}

ThreadState* ensure_thread_state() {
  ThreadState* ts = t_state;
  if (ts != nullptr) return ts;
  ts = new ThreadState();
  thread_stack_bounds(ts->stack_lo, ts->stack_hi);
  {
    std::lock_guard lock(g_threads_mutex);
    thread_registry().push_back(ts);
    if (g_attribution_active.load(std::memory_order_relaxed))
      ts->ring.store(new SampleRing(g_ring_capacity), std::memory_order_release);
  }
  t_state = ts;
  return ts;
}

/// Interned span names live forever, so a drained sample's name
/// pointer is valid long after the span (and its std::string) died.
const char* intern_name(std::string_view name) {
  static std::mutex mutex;
  static auto* names = new std::unordered_set<std::string>();
  std::lock_guard lock(mutex);
  return names->emplace(name).first->c_str();
}

ZS_PROF_NO_SANITIZE
std::uint32_t capture_stack(void* context, const ThreadState* ts,
                            std::uintptr_t* pcs) {
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(context);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(context);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)context;
#endif
  std::uint32_t n = 0;
  if (pc != 0) pcs[n++] = pc;
  // Frame-pointer chain walk. Every candidate frame must lie inside
  // the thread's stack segment, be pointer-aligned, and move strictly
  // upward — a corrupt chain terminates the walk, it cannot fault.
  const std::uintptr_t lo = ts->stack_lo;
  const std::uintptr_t hi = ts->stack_hi;
  while (n < kMaxFrames && fp >= lo && hi >= 2 * sizeof(std::uintptr_t) &&
         fp <= hi - 2 * sizeof(std::uintptr_t) &&
         (fp & (sizeof(std::uintptr_t) - 1)) == 0) {
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    const std::uintptr_t next = frame[0];
    if (ret < 0x1000) break;  // not a plausible return address
    pcs[n++] = ret;
    if (next <= fp) break;  // frames must move up the stack
    fp = next;
  }
  return n;
}

ZS_PROF_NO_SANITIZE
void sigprof_handler(int, siginfo_t*, void* context) {
  const int saved_errno = errno;
  ThreadState* ts = t_state;
  SampleRing* ring =
      ts == nullptr ? nullptr : ts->ring.load(std::memory_order_acquire);
  if (ring == nullptr) {
    g_lost.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail > ring->mask) {  // full: drop, never wait
    g_lost.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  RawSample& sample = ring->slots[head & ring->mask];
  std::uint32_t depth = ts->span_depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
  for (std::uint32_t i = 0; i < depth; ++i) sample.spans[i] = ts->span_stack[i];
  sample.n_spans = depth;
  sample.n_pcs = capture_stack(context, ts, sample.pcs);
  ring->head.store(head + 1, std::memory_order_release);
  g_captured.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

// ---------------------------------------------------------------------------
// The consumer side: aggregation, symbolization, session control.

/// Aggregation key: n_spans, span pointers (root first), pcs (leaf
/// first) — cheap to build from a RawSample, folds identical stacks.
using StackKey = std::vector<std::uintptr_t>;

struct Session {
  bool running = false;
  ProfilerOptions options;
  std::chrono::steady_clock::time_point started_at;
  timer_t timer{};
  bool timer_valid = false;
  std::thread drain_thread;
  std::mutex drain_mutex;
  std::condition_variable drain_cv;
  bool drain_stop = false;
  std::map<StackKey, std::uint64_t> aggregate;
};

std::mutex g_control_mutex;  // serializes start()/stop()
Session& session() {
  static auto* s = new Session();
  return *s;
}

void drain_ring(ThreadState* ts, std::map<StackKey, std::uint64_t>& aggregate) {
  SampleRing* ring = ts->ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = ring->head.load(std::memory_order_acquire);
  StackKey key;
  while (tail != head) {
    const RawSample& sample = ring->slots[tail & ring->mask];
    key.clear();
    key.reserve(1 + sample.n_spans + sample.n_pcs);
    key.push_back(sample.n_spans);
    for (std::uint32_t i = 0; i < sample.n_spans; ++i)
      key.push_back(reinterpret_cast<std::uintptr_t>(sample.spans[i]));
    for (std::uint32_t i = 0; i < sample.n_pcs; ++i) key.push_back(sample.pcs[i]);
    ++aggregate[key];
    ++tail;
    ring->tail.store(tail, std::memory_order_release);
  }
}

void drain_all(std::map<StackKey, std::uint64_t>& aggregate) {
  std::vector<ThreadState*> threads;
  {
    std::lock_guard lock(g_threads_mutex);
    threads = thread_registry();
  }
  for (ThreadState* ts : threads) drain_ring(ts, aggregate);
}

void drain_loop() {
  // The drain thread must never receive SIGPROF itself: its samples
  // would always be unattributable profiler overhead.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);
  Session& s = session();
  std::unique_lock lock(s.drain_mutex);
  while (!s.drain_stop) {
    s.drain_cv.wait_for(lock, std::chrono::milliseconds(100));
    drain_all(s.aggregate);
  }
}

std::string symbolize(std::uintptr_t pc,
                      std::unordered_map<std::uintptr_t, std::string>& cache) {
  const auto it = cache.find(pc);
  if (it != cache.end()) return it->second;
  std::string name;
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 1;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
  } else {
    // No symbol (static function, stripped object): module+offset,
    // resolvable offline with addr2line.
    const char* module = info.dli_fname != nullptr ? info.dli_fname : "?";
    if (const char* slash = std::strrchr(module, '/'); slash != nullptr)
      module = slash + 1;
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(info.dli_fbase);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s+0x%" PRIxPTR, module,
                  base != 0 && pc >= base ? pc - base : pc);
    name = buf;
  }
  // Frames are joined with ';' in folded output; scrub the separator.
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == '\n' || c == '\r') c = ' ';
  }
  cache.emplace(pc, name);
  return name;
}

ProfileReport build_report(const Session& s, std::uint64_t dropped) {
  ProfileReport report;
  report.valid = true;
  report.rate_hz = s.options.rate_hz;
  report.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - s.started_at)
          .count();
  report.dropped = dropped;

  std::unordered_map<std::uintptr_t, std::string> symbol_cache;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> frames;
  for (const auto& [key, count] : s.aggregate) {
    report.samples += count;
    const std::size_t n_spans = static_cast<std::size_t>(key[0]);
    const std::size_t n_pcs = key.size() - 1 - n_spans;

    // Phase attribution: the innermost active span.
    std::string phase = "(no span)";
    if (n_spans > 0) {
      const char* innermost = reinterpret_cast<const char*>(key[n_spans]);
      phase = innermost;
    }
    report.phase_samples[phase] += count;

    // Folded stack: spans root-first, then frames root-first (pcs are
    // captured leaf-first).
    std::string stack;
    for (std::size_t i = 0; i < n_spans; ++i) {
      if (!stack.empty()) stack += ';';
      stack += reinterpret_cast<const char*>(key[1 + i]);
    }
    std::vector<std::string> symbols(n_pcs);
    for (std::size_t i = 0; i < n_pcs; ++i)
      symbols[i] = symbolize(key[1 + n_spans + i], symbol_cache);
    for (std::size_t i = n_pcs; i-- > 0;) {
      if (!stack.empty()) stack += ';';
      stack += symbols[i];
    }
    if (stack.empty()) stack = "(unknown)";
    report.folded[stack] += count;

    // Self/total accounting per symbol (total counts a stack once even
    // if the symbol recurses).
    if (n_pcs > 0) frames[symbols[0]].first += count;
    std::unordered_set<std::string_view> seen;
    for (const auto& symbol : symbols) {
      if (seen.insert(symbol).second) frames[symbol].second += count;
    }
  }
  report.top_frames.reserve(frames.size());
  for (auto& [symbol, counts] : frames)
    report.top_frames.push_back({symbol, counts.first, counts.second});
  std::sort(report.top_frames.begin(), report.top_frames.end(),
            [](const ProfiledFrame& a, const ProfiledFrame& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.symbol < b.symbol;
            });
  return report;
}

}  // namespace

bool prof_attribution_active() noexcept {
  return g_attribution_active.load(std::memory_order_relaxed);
}

const char* prof_intern(std::string_view name) { return intern_name(name); }

void prof_push_span(const char* interned_name) noexcept {
  ThreadState* ts = ensure_thread_state();
  const std::uint32_t depth = ts->span_depth.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) ts->span_stack[depth] = interned_name;
  // The name store must be visible before the depth covers it; a
  // signal fence suffices because the reader is a handler on this
  // same thread.
  std::atomic_signal_fence(std::memory_order_release);
  ts->span_depth.store(depth + 1, std::memory_order_relaxed);
}

void prof_pop_span() noexcept {
  ThreadState* ts = t_state;
  if (ts == nullptr) return;
  const std::uint32_t depth = ts->span_depth.load(std::memory_order_relaxed);
  if (depth > 0) ts->span_depth.store(depth - 1, std::memory_order_relaxed);
}

void prof_register_thread() noexcept { ensure_thread_state(); }

Profiler& Profiler::global() {
  static auto* profiler = new Profiler();
  return *profiler;
}

bool Profiler::running() const {
  return g_attribution_active.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::samples_captured() const {
  return g_captured.load(std::memory_order_relaxed);
}

bool Profiler::start(const ProfilerOptions& options) {
  std::lock_guard control(g_control_mutex);
  Session& s = session();
  if (s.running || options.rate_hz <= 0) return false;

  s.options = options;
  s.aggregate.clear();
  s.drain_stop = false;
  g_lost.store(0, std::memory_order_relaxed);
  g_captured.store(0, std::memory_order_relaxed);

  // Register the calling thread, give every known thread a ring, and
  // discard any straggler samples from a previous session.
  ensure_thread_state();
  {
    std::lock_guard lock(g_threads_mutex);
    g_ring_capacity = options.ring_capacity;
    for (ThreadState* ts : thread_registry()) {
      SampleRing* ring = ts->ring.load(std::memory_order_relaxed);
      if (ring == nullptr) {
        ts->ring.store(new SampleRing(g_ring_capacity), std::memory_order_release);
      } else {
        ring->tail.store(ring->head.load(std::memory_order_acquire),
                         std::memory_order_release);
      }
    }
  }

  struct sigaction action {};
  action.sa_sigaction = &sigprof_handler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, nullptr) != 0) return false;

  // A CPU-time clock: an idle process generates no samples, which is
  // exactly right for "where did the CPU go". Fall back to the
  // monotonic clock (wall-time sampling) where unsupported.
  sigevent sev{};
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &s.timer) != 0 &&
      timer_create(CLOCK_MONOTONIC, &sev, &s.timer) != 0) {
    return false;
  }
  s.timer_valid = true;

  g_attribution_active.store(true, std::memory_order_relaxed);
  s.started_at = std::chrono::steady_clock::now();
  s.drain_thread = std::thread(drain_loop);

  const long period_ns = 1'000'000'000L / options.rate_hz;
  itimerspec spec{};
  spec.it_interval.tv_sec = period_ns / 1'000'000'000L;
  spec.it_interval.tv_nsec = period_ns % 1'000'000'000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(s.timer, 0, &spec, nullptr) != 0) {
    g_attribution_active.store(false, std::memory_order_relaxed);
    timer_delete(s.timer);
    s.timer_valid = false;
    {
      std::lock_guard lock(s.drain_mutex);
      s.drain_stop = true;
    }
    s.drain_cv.notify_all();
    s.drain_thread.join();
    return false;
  }
  s.running = true;
  return true;
}

ProfileReport Profiler::stop() {
  std::lock_guard control(g_control_mutex);
  Session& s = session();
  if (!s.running) return {};

  // Disarm first so no new expirations queue; the handler stays
  // installed (restoring the old disposition could turn one in-flight
  // SIGPROF into process termination).
  if (s.timer_valid) {
    timer_delete(s.timer);
    s.timer_valid = false;
  }
  g_attribution_active.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(s.drain_mutex);
    s.drain_stop = true;
  }
  s.drain_cv.notify_all();
  if (s.drain_thread.joinable()) s.drain_thread.join();
  drain_all(s.aggregate);

  ProfileReport report = build_report(s, g_lost.load(std::memory_order_relaxed));
  s.aggregate.clear();
  s.running = false;
  return report;
}

#else  // !ZS_PROF_ENABLED — every entry point is an inert stub.

Profiler& Profiler::global() {
  static auto* profiler = new Profiler();
  return *profiler;
}

bool Profiler::start(const ProfilerOptions&) { return false; }
ProfileReport Profiler::stop() { return {}; }
bool Profiler::running() const { return false; }
std::uint64_t Profiler::samples_captured() const { return 0; }

#endif  // ZS_PROF_ENABLED

ScopedProfileSession::ScopedProfileSession(std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) return;
  if constexpr (!kProfCompiledIn) {
    std::fprintf(stderr,
                 "--profile-out ignored: profiler compiled out "
                 "(ZS_PROF_ENABLED=0)\n");
    return;
  }
  active_ = Profiler::global().start();
  if (!active_)
    std::fprintf(stderr, "--profile-out ignored: cannot start profiler "
                         "(already running?)\n");
}

ScopedProfileSession::~ScopedProfileSession() {
  if (!active_) return;
  const ProfileReport report = Profiler::global().stop();
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write profile to %s\n", path_.c_str());
  } else {
    const std::string folded = report.to_folded();
    std::fwrite(folded.data(), 1, folded.size(), out);
    std::fclose(out);
  }
  std::fprintf(stderr, "%s", report.top_report(15).c_str());
  std::fprintf(stderr, "profile: %" PRIu64 " sample(s) at %d Hz -> %s\n",
               report.samples, report.rate_hz, path_.c_str());
}

}  // namespace zombiescope::obs

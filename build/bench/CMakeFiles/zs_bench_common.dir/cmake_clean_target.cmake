file(REMOVE_RECURSE
  "libzs_bench_common.a"
)

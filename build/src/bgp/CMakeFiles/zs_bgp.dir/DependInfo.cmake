
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/aspath.cpp" "src/bgp/CMakeFiles/zs_bgp.dir/aspath.cpp.o" "gcc" "src/bgp/CMakeFiles/zs_bgp.dir/aspath.cpp.o.d"
  "/root/repo/src/bgp/session_fsm.cpp" "src/bgp/CMakeFiles/zs_bgp.dir/session_fsm.cpp.o" "gcc" "src/bgp/CMakeFiles/zs_bgp.dir/session_fsm.cpp.o.d"
  "/root/repo/src/bgp/types.cpp" "src/bgp/CMakeFiles/zs_bgp.dir/types.cpp.o" "gcc" "src/bgp/CMakeFiles/zs_bgp.dir/types.cpp.o.d"
  "/root/repo/src/bgp/update.cpp" "src/bgp/CMakeFiles/zs_bgp.dir/update.cpp.o" "gcc" "src/bgp/CMakeFiles/zs_bgp.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/zs_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

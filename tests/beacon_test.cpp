// Tests for the beacon schedules and the two BGP clock encodings,
// pinned against concrete examples from the paper.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "beacon/clock.hpp"
#include "beacon/schedule.hpp"

namespace zombiescope::beacon {
namespace {

using netbase::IpAddress;
using netbase::kDay;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::utc;

TEST(AggregatorClock, PaperExampleDecodes) {
  // §3.1: Aggregator 10.19.29.192 observed at 2018-07-19 02:00:02
  // decodes to 2018-07-15 12:00 UTC (best case).
  const auto decoded = decode_aggregator_clock(IpAddress::parse("10.19.29.192"),
                                               utc(2018, 7, 19, 2, 0, 2));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, utc(2018, 7, 15, 12, 0, 0));
}

TEST(AggregatorClock, EncodeMatchesPaperExample) {
  EXPECT_EQ(encode_aggregator_clock(utc(2018, 7, 15, 12, 0, 0)).to_string(), "10.19.29.192");
}

TEST(AggregatorClock, RoundTripWithinMonth) {
  for (int day = 1; day <= 28; day += 3) {
    for (int hour = 0; hour < 24; hour += 4) {
      const auto t = utc(2024, 6, day, hour, 0, 0);
      const auto decoded = decode_aggregator_clock(encode_aggregator_clock(t), t + kHour);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, t);
    }
  }
}

TEST(AggregatorClock, MonthRolloverPicksPreviousMonth) {
  // Announced June 30 23:00, observed July 1 06:00: the clock value is
  // larger than the seconds elapsed in July, so the decoder must fall
  // back to June (the paper's footnote-1 ambiguity resolution).
  const auto announced = utc(2024, 6, 30, 23, 0, 0);
  const auto decoded =
      decode_aggregator_clock(encode_aggregator_clock(announced), utc(2024, 7, 1, 6, 0, 0));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, announced);
}

TEST(AggregatorClock, AmbiguityResolvesToLatestCandidate) {
  // A clock value of 0 observed mid-month decodes to this month's
  // start, not an earlier month.
  const auto decoded = decode_aggregator_clock(encode_aggregator_clock(utc(2024, 6, 1)),
                                               utc(2024, 6, 15));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, utc(2024, 6, 1));
}

TEST(AggregatorClock, RejectsNonClockAddresses) {
  EXPECT_FALSE(decode_aggregator_clock(IpAddress::parse("193.0.0.1"), utc(2024, 6, 1))
                   .has_value());
  EXPECT_FALSE(decode_aggregator_clock(IpAddress::parse("2001:db8::1"), utc(2024, 6, 1))
                   .has_value());
}

TEST(AggregatorClock, AttributeCarriesOriginAsn) {
  const auto agg = make_beacon_aggregator(12654, utc(2018, 7, 15, 12, 0, 0));
  EXPECT_EQ(agg.asn, 12654u);
  EXPECT_EQ(agg.address.to_string(), "10.19.29.192");
}

TEST(RisSchedule, ClassicBeaconSet) {
  const auto schedule = RisBeaconSchedule::classic();
  int v4 = 0, v6 = 0;
  for (const auto& p : schedule.prefixes()) (p.is_v4() ? v4 : v6)++;
  EXPECT_EQ(v4, 13);  // the paper: "14 IPv6 and 13 IPv4 prefixes"
  EXPECT_EQ(v6, 14);
}

TEST(RisSchedule, FourHourCycleTwoHourUptime) {
  const auto schedule = RisBeaconSchedule::classic();
  const auto events = schedule.events(utc(2018, 7, 19), utc(2018, 7, 20));
  // 6 intervals per day x 27 prefixes.
  EXPECT_EQ(events.size(), 6u * 27u);
  for (const auto& e : events) {
    EXPECT_EQ((e.announce_time - utc(2018, 7, 19)) % (4 * kHour), 0);
    EXPECT_EQ(e.withdraw_time - e.announce_time, 2 * kHour);
    EXPECT_FALSE(e.superseded);
  }
}

TEST(RisSchedule, WindowClipsToStart) {
  const auto schedule = RisBeaconSchedule::classic();
  const auto events = schedule.events(utc(2018, 7, 19, 1, 0, 0), utc(2018, 7, 19, 9, 0, 0));
  // Announcements at 04:00 and 08:00 only.
  std::set<netbase::TimePoint> times;
  for (const auto& e : events) times.insert(e.announce_time);
  EXPECT_EQ(times, (std::set<netbase::TimePoint>{utc(2018, 7, 19, 4, 0, 0),
                                                 utc(2018, 7, 19, 8, 0, 0)}));
}

TEST(LongLivedSchedule, DailyPrefixClockMatchesPaperFormat) {
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kDaily);
  // First experiment started 2024-06-04 11:45 UTC.
  EXPECT_EQ(schedule.prefix_for(utc(2024, 6, 4, 11, 45, 0)).to_string(),
            "2a0d:3dc1:1145::/48");
  EXPECT_EQ(schedule.prefix_for(utc(2024, 6, 5, 0, 0, 0)).to_string(), "2a0d:3dc1::/48");
  EXPECT_EQ(schedule.prefix_for(utc(2024, 6, 5, 23, 45, 0)).to_string(),
            "2a0d:3dc1:2345::/48");
  // The paper's resurrected prefix 2a0d:3dc1:1851::/48 is the 18:51
  // slot? No — slots are on :00/:15/:30/:45; 1851 is not a slot form.
  // It can only come from the 15-day format (hour 18, minute+day 51).
}

TEST(LongLivedSchedule, DailyRecyclesEvery24Hours) {
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kDaily);
  EXPECT_EQ(schedule.prefix_for(utc(2024, 6, 4, 12, 0, 0)),
            schedule.prefix_for(utc(2024, 6, 5, 12, 0, 0)));
  EXPECT_NE(schedule.prefix_for(utc(2024, 6, 4, 12, 0, 0)),
            schedule.prefix_for(utc(2024, 6, 4, 12, 15, 0)));
}

TEST(LongLivedSchedule, NinetySixDistinctPrefixesPerDay) {
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kDaily);
  std::set<Prefix> prefixes;
  for (netbase::TimePoint t = utc(2024, 6, 5); t < utc(2024, 6, 6); t += 15 * kMinute)
    prefixes.insert(schedule.prefix_for(t));
  EXPECT_EQ(prefixes.size(), 96u);
}

TEST(LongLivedSchedule, FifteenDayFormatPaperCollision) {
  // Footnote 3: on 2024-06-15 the 00:30 and 03:00 prefixes are both
  // 2a0d:3dc1:30::/48.
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kFifteenDay);
  EXPECT_EQ(schedule.prefix_for(utc(2024, 6, 15, 0, 30, 0)).to_string(),
            "2a0d:3dc1:30::/48");
  EXPECT_EQ(schedule.prefix_for(utc(2024, 6, 15, 3, 0, 0)).to_string(),
            "2a0d:3dc1:30::/48");
}

TEST(LongLivedSchedule, FifteenDayRecycle) {
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kFifteenDay);
  const auto t = utc(2024, 6, 10, 11, 30, 0);
  EXPECT_EQ(schedule.prefix_for(t), schedule.prefix_for(t + 15 * kDay));
  EXPECT_NE(schedule.prefix_for(t), schedule.prefix_for(t + kDay));
}

TEST(LongLivedSchedule, ResurrectedPrefixComesFromFifteenDayFormat) {
  // 2a0d:3dc1:1851::/48 = hour 18, minute+day%15 = 51; e.g. day 21
  // (21%15=6) minute 45 -> "18"+"51". The second experiment covered
  // 2024-06-21 18:45.
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kFifteenDay);
  EXPECT_EQ(schedule.prefix_for(utc(2024, 6, 21, 18, 45, 0)).to_string(),
            "2a0d:3dc1:1851::/48");
}

TEST(LongLivedSchedule, EventsMarkSupersededOnCollisionDays) {
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kFifteenDay);
  const auto events = schedule.events(utc(2024, 6, 15), utc(2024, 6, 16));
  EXPECT_EQ(events.size(), 96u);
  int superseded = 0;
  std::map<Prefix, int> final_count;
  for (const auto& e : events) {
    if (e.superseded)
      ++superseded;
    else
      final_count[e.prefix]++;
  }
  EXPECT_GT(superseded, 0);  // the bug manifests on day 15
  for (const auto& [prefix, count] : final_count)
    EXPECT_EQ(count, 1) << prefix.to_string() << " studied more than once";
}

TEST(LongLivedSchedule, EventsQuarterHourAligned) {
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kDaily);
  const auto events = schedule.events(utc(2024, 6, 4, 11, 45, 0), utc(2024, 6, 4, 13, 0, 0));
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().announce_time, utc(2024, 6, 4, 11, 45, 0));
  for (const auto& e : events) {
    EXPECT_EQ(e.announce_time % (15 * kMinute), 0);
    EXPECT_EQ(e.withdraw_time - e.announce_time, 15 * kMinute);
  }
}

TEST(LongLivedSchedule, RejectsOffSlotQuery) {
  const auto schedule = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kDaily);
  EXPECT_THROW(schedule.prefix_for(utc(2024, 6, 4, 11, 44, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace zombiescope::beacon

file(REMOVE_RECURSE
  "CMakeFiles/ablation_noisy_filter.dir/ablation_noisy_filter.cpp.o"
  "CMakeFiles/ablation_noisy_filter.dir/ablation_noisy_filter.cpp.o.d"
  "ablation_noisy_filter"
  "ablation_noisy_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noisy_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// zsreport — forensic reports from a zombie flight-recorder journal.
//
// Reads a journal written by zsdetect/zssim (--journal-out, NDJSON or
// binary — auto-detected) and reconstructs what the run decided:
//
//   * a run summary (event counts per type, covered time range);
//   * the zombie set: every (prefix, peer) the detector declared, with
//     declare/clear times and the threshold used;
//   * per-peer zombie probabilities (the paper's Table 4/5 view) when
//     the journal carries run metadata;
//   * resurrection chains per prefix (the Fig. 4 view);
//   * with --peers, the peer feed-quality history the live zspeerq
//     classifier journaled (noisy enter/exit with the probability and
//     median that drove each flip, silence episodes, final noisy set);
//   * with --prefix, the full chronological timeline of one prefix.
//
//   zsreport JOURNAL [--prefix P] [--peers] [--json] [--max-rows N]
//            [--profile-out FILE]
//
// JOURNAL may be `-` to read the journal from stdin, so a pipeline
// like `zsdetect --journal-out /dev/stdout ... | zsreport -` works.
// --profile-out samples the report build with zsprof and writes folded
// stacks to FILE (useful on multi-gigabyte journals).

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/time.hpp"
#include "obs/build_info.hpp"
#include "obs/journal.hpp"
#include "obs/prof.hpp"

using namespace zombiescope;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s JOURNAL [--prefix PREFIX] [--peers] [--json] [--max-rows N]\n"
               "          [--profile-out FILE] [--version]\n"
               "       (JOURNAL may be '-' to read from stdin)\n",
               argv0);
  std::exit(2);
}

struct Options {
  std::string journal_path;
  std::optional<netbase::Prefix> prefix;
  bool peers = false;
  bool json = false;
  int max_rows = 50;
  std::string profile_out;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--prefix") {
      const auto parsed = netbase::Prefix::try_parse(need_value(i));
      if (!parsed.has_value()) usage(argv[0]);
      opt.prefix = *parsed;
    } else if (arg == "--peers") {
      opt.peers = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--max-rows") {
      opt.max_rows = std::stoi(need_value(i));
    } else if (arg == "--profile-out") {
      opt.profile_out = need_value(i);
    } else if (arg == "-" && opt.journal_path.empty()) {
      opt.journal_path = arg;  // read the journal from stdin
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else if (opt.journal_path.empty()) {
      opt.journal_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.journal_path.empty()) usage(argv[0]);
  return opt;
}

std::string peer_label(const obs::JournalEvent& ev) {
  return ev.peer_address.to_string() + " (AS" + std::to_string(ev.peer_asn) + ")";
}

/// One reconstructed zombie: keyed by (prefix, peer, withdrawal) so a
/// prefix recycled across intervals yields distinct entries.
struct Zombie {
  netbase::Prefix prefix;
  std::uint32_t peer_asn = 0;
  netbase::IpAddress peer_address;
  netbase::TimePoint withdrawn_at = 0;
  netbase::TimePoint declared_at = 0;
  netbase::Duration threshold = 0;
  std::optional<netbase::TimePoint> cleared_at;
};

struct Report {
  std::vector<obs::JournalEvent> events;
  std::map<std::string, std::size_t> counts_by_type;
  netbase::TimePoint first_time = 0;
  netbase::TimePoint last_time = 0;
  std::optional<obs::JournalEvent> run_meta;
  std::vector<Zombie> zombies;
  // peer label -> zombie count (distinct declarations)
  std::map<std::string, std::size_t> zombies_by_peer;
  // prefix -> resurrection events, by reappearance time
  std::map<netbase::Prefix, std::vector<obs::JournalEvent>> resurrections;
  // peer label -> zspeerq classifier transitions in time order
  // (peer_noisy_enter/exit, peer_silent)
  std::map<std::string, std::vector<obs::JournalEvent>> peer_transitions;
  // peers noisy after the last journaled transition
  std::vector<std::string> noisy_final;
};

Report build_report(std::vector<obs::JournalEvent> events) {
  Report report;
  report.events = std::move(events);
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const auto& a, const auto& b) { return a.time < b.time; });

  std::map<std::tuple<netbase::Prefix, std::uint32_t, netbase::IpAddress,
                      netbase::TimePoint>,
           std::size_t>
      zombie_index;
  for (const auto& ev : report.events) {
    ++report.counts_by_type[std::string(obs::to_string(ev.type))];
    if (report.first_time == 0 || ev.time < report.first_time)
      report.first_time = ev.time;
    report.last_time = std::max(report.last_time, ev.time);

    switch (ev.type) {
      case obs::JournalEventType::kRunMeta:
        report.run_meta = ev;
        break;
      case obs::JournalEventType::kZombieDeclared: {
        const auto key = std::make_tuple(ev.prefix, ev.peer_asn, ev.peer_address,
                                         static_cast<netbase::TimePoint>(ev.b));
        if (zombie_index.contains(key)) break;  // idempotent re-declare
        zombie_index[key] = report.zombies.size();
        Zombie z;
        z.prefix = ev.prefix;
        z.peer_asn = ev.peer_asn;
        z.peer_address = ev.peer_address;
        z.withdrawn_at = ev.b;
        z.declared_at = ev.time;
        z.threshold = ev.a;
        report.zombies.push_back(z);
        ++report.zombies_by_peer[peer_label(ev)];
        break;
      }
      case obs::JournalEventType::kZombieCleared: {
        const auto key = std::make_tuple(ev.prefix, ev.peer_asn, ev.peer_address,
                                         static_cast<netbase::TimePoint>(ev.b));
        auto it = zombie_index.find(key);
        if (it != zombie_index.end() &&
            !report.zombies[it->second].cleared_at.has_value())
          report.zombies[it->second].cleared_at = ev.time;
        break;
      }
      case obs::JournalEventType::kResurrectionDetected:
        report.resurrections[ev.prefix].push_back(ev);
        break;
      case obs::JournalEventType::kPeerNoisyEnter:
      case obs::JournalEventType::kPeerNoisyExit:
      case obs::JournalEventType::kPeerSilent:
        report.peer_transitions[peer_label(ev)].push_back(ev);
        break;
      default:
        break;
    }
  }
  // Replay each peer's transitions (already time-ordered) to the final
  // classification — the offline reconstruction of GET /peers/noisy.
  for (const auto& [peer, transitions] : report.peer_transitions) {
    bool noisy = false;
    for (const auto& ev : transitions) {
      if (ev.type == obs::JournalEventType::kPeerNoisyEnter) noisy = true;
      if (ev.type == obs::JournalEventType::kPeerNoisyExit) noisy = false;
    }
    if (noisy) report.noisy_final.push_back(peer);
  }
  return report;
}

void print_text(const Report& report, const Options& opt) {
  std::printf("== journal: %zu event(s)", report.events.size());
  if (!report.events.empty())
    std::printf(" [%s .. %s]", netbase::format_utc(report.first_time).c_str(),
                netbase::format_utc(report.last_time).c_str());
  std::printf("\n");
  for (const auto& [name, count] : report.counts_by_type)
    std::printf("    %-28s %zu\n", name.c_str(), count);
  if (report.run_meta.has_value())
    std::printf("    run: %lld studied announcement(s), threshold %s\n",
                static_cast<long long>(report.run_meta->a),
                netbase::format_duration(report.run_meta->b).c_str());

  std::printf("\n== zombie set: %zu declared (prefix, peer) route(s)\n",
              report.zombies.size());
  int shown = 0;
  for (const auto& z : report.zombies) {
    if (++shown > opt.max_rows) {
      std::printf("... (%zu more)\n", report.zombies.size() - static_cast<std::size_t>(shown - 1));
      break;
    }
    std::printf("%s  %-22s %s (AS%u)  withdrawn %s, declared %s",
                netbase::format_utc(z.declared_at).c_str(),
                z.prefix.to_string().c_str(), z.peer_address.to_string().c_str(),
                z.peer_asn, netbase::format_utc(z.withdrawn_at).c_str(),
                netbase::format_duration(z.threshold).c_str());
    if (z.cleared_at.has_value())
      std::printf(" later, cleared %s", netbase::format_utc(*z.cleared_at).c_str());
    std::printf("\n");
  }

  if (!report.zombies_by_peer.empty()) {
    std::printf("\n== zombies per peer");
    const bool have_denominator =
        report.run_meta.has_value() && report.run_meta->a > 0;
    if (have_denominator)
      std::printf(" (probability over %lld studied announcements)",
                  static_cast<long long>(report.run_meta->a));
    std::printf("\n");
    for (const auto& [peer, count] : report.zombies_by_peer) {
      if (have_denominator)
        std::printf("    %-42s %6zu  %6.2f%%\n", peer.c_str(), count,
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(report.run_meta->a));
      else
        std::printf("    %-42s %6zu\n", peer.c_str(), count);
    }
  }

  if (!report.resurrections.empty()) {
    std::printf("\n== resurrection chains\n");
    for (const auto& [prefix, chain] : report.resurrections) {
      std::printf("%s\n", prefix.to_string().c_str());
      for (const auto& ev : chain)
        std::printf("    vanished %s -> reappeared %s at %s\n",
                    netbase::format_utc(ev.a).c_str(),
                    netbase::format_utc(ev.b).c_str(), peer_label(ev).c_str());
    }
  }

  if (opt.peers) {
    std::printf("\n== peer feed quality: %zu peer(s) with journaled transitions",
                report.peer_transitions.size());
    std::printf(", %zu noisy at end\n", report.noisy_final.size());
    for (const auto& [peer, transitions] : report.peer_transitions) {
      std::printf("%s\n", peer.c_str());
      for (const auto& ev : transitions) {
        if (ev.type == obs::JournalEventType::kPeerSilent) {
          std::printf("    %s  silent (no update for %s, last seen %s)\n",
                      netbase::format_utc(ev.time).c_str(),
                      netbase::format_duration(ev.a).c_str(),
                      netbase::format_utc(ev.b).c_str());
        } else {
          std::printf("    %s  %-16s p=%.4f median=%.4f stuck=%lld\n",
                      netbase::format_utc(ev.time).c_str(),
                      ev.type == obs::JournalEventType::kPeerNoisyEnter
                          ? "noisy ENTER" : "noisy exit",
                      static_cast<double>(ev.a) * 1e-6,
                      static_cast<double>(ev.b) * 1e-6,
                      static_cast<long long>(ev.c));
        }
      }
    }
    if (!report.noisy_final.empty()) {
      std::printf("  final noisy set:\n");
      for (const auto& peer : report.noisy_final)
        std::printf("    %s\n", peer.c_str());
    }
  }

  if (opt.prefix.has_value()) {
    std::printf("\n== timeline for %s\n", opt.prefix->to_string().c_str());
    for (const auto& ev : report.events) {
      if (!ev.has_prefix || ev.prefix != *opt.prefix) continue;
      std::printf("%s  %-26s", netbase::format_utc(ev.time).c_str(),
                  std::string(obs::to_string(ev.type)).c_str());
      if (ev.has_peer) std::printf("  %s", peer_label(ev).c_str());
      std::printf("  a=%lld b=%lld c=%lld\n", static_cast<long long>(ev.a),
                  static_cast<long long>(ev.b), static_cast<long long>(ev.c));
    }
  }
}

void print_json(const Report& report, const Options& opt) {
  std::string out = "{\n  \"schema\": \"zsreport-v1\",\n";
  out += "  \"events\": " + std::to_string(report.events.size()) + ",\n";
  out += "  \"first_time\": " + std::to_string(report.first_time) + ",\n";
  out += "  \"last_time\": " + std::to_string(report.last_time) + ",\n";
  out += "  \"counts\": {";
  bool first = true;
  for (const auto& [name, count] : report.counts_by_type) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"" + name + "\": " + std::to_string(count);
  }
  out += report.counts_by_type.empty() ? "},\n" : "\n  },\n";
  if (report.run_meta.has_value()) {
    out += "  \"run\": {\"studied_announcements\": " +
           std::to_string(report.run_meta->a) +
           ", \"threshold\": " + std::to_string(report.run_meta->b) + "},\n";
  }
  out += "  \"zombies\": [";
  for (std::size_t i = 0; i < report.zombies.size(); ++i) {
    const Zombie& z = report.zombies[i];
    if (i != 0) out += ',';
    out += "\n    {\"prefix\": \"" + z.prefix.to_string() + "\", \"peer_asn\": " +
           std::to_string(z.peer_asn) + ", \"peer\": \"" +
           z.peer_address.to_string() + "\", \"withdrawn_at\": " +
           std::to_string(z.withdrawn_at) + ", \"declared_at\": " +
           std::to_string(z.declared_at) + ", \"threshold\": " +
           std::to_string(z.threshold);
    if (z.cleared_at.has_value())
      out += ", \"cleared_at\": " + std::to_string(*z.cleared_at);
    out += "}";
  }
  out += report.zombies.empty() ? "],\n" : "\n  ],\n";
  out += "  \"resurrections\": [";
  first = true;
  for (const auto& [prefix, chain] : report.resurrections) {
    for (const auto& ev : chain) {
      if (!first) out += ',';
      first = false;
      out += "\n    {\"prefix\": \"" + prefix.to_string() + "\", \"vanished_at\": " +
             std::to_string(ev.a) + ", \"reappeared_at\": " + std::to_string(ev.b) +
             ", \"peer_asn\": " + std::to_string(ev.peer_asn) + ", \"peer\": \"" +
             ev.peer_address.to_string() + "\"}";
    }
  }
  out += report.resurrections.empty() ? "]" : "\n  ]";
  if (opt.peers) {
    out += ",\n  \"peer_transitions\": [";
    first = true;
    for (const auto& [peer, transitions] : report.peer_transitions) {
      (void)peer;
      for (const auto& ev : transitions) {
        if (!first) out += ',';
        first = false;
        out += "\n    " + obs::to_ndjson(ev);
      }
    }
    out += first ? "],\n" : "\n  ],\n";
    out += "  \"noisy_final\": [";
    first = true;
    for (const auto& peer : report.noisy_final) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + peer + "\"";
    }
    out += "]";
  }
  if (opt.prefix.has_value()) {
    out += ",\n  \"timeline\": [";
    first = true;
    for (const auto& ev : report.events) {
      if (!ev.has_prefix || ev.prefix != *opt.prefix) continue;
      if (!first) out += ',';
      first = false;
      out += "\n    " + obs::to_ndjson(ev);
    }
    out += first ? "]" : "\n  ]";
  }
  out += "\n}\n";
  std::fputs(out.c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::puts(obs::identity_line("zsreport").c_str());
      return 0;
    }
  }
  const Options opt = parse_options(argc, argv);
  obs::ScopedProfileSession profile(opt.profile_out);
  std::vector<obs::JournalEvent> events;
  try {
    events = obs::read_journal_file(opt.journal_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const Report report = build_report(std::move(events));
  if (opt.json)
    print_json(report, opt);
  else
    print_text(report, opt);
  return 0;
}

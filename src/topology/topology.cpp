#include "topology/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace zombiescope::topology {

std::string to_string(Relationship rel) {
  switch (rel) {
    case Relationship::kProvider:
      return "provider";
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kPeer:
      return "peer";
  }
  return "?";
}

Relationship reverse(Relationship rel) {
  switch (rel) {
    case Relationship::kProvider:
      return Relationship::kCustomer;
    case Relationship::kCustomer:
      return Relationship::kProvider;
    case Relationship::kPeer:
      return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

void Topology::add_as(const AsInfo& info) {
  if (as_index_.contains(info.asn))
    throw std::invalid_argument("duplicate AS " + std::to_string(info.asn));
  as_index_[info.asn] = infos_.size();
  infos_.push_back(info);
  adjacency_.emplace_back();
}

void Topology::add_link(bgp::Asn from, bgp::Asn to, Relationship rel) {
  if (from == to) throw std::invalid_argument("self-link on AS " + std::to_string(from));
  auto from_it = as_index_.find(from);
  auto to_it = as_index_.find(to);
  if (from_it == as_index_.end() || to_it == as_index_.end())
    throw std::invalid_argument("link references unknown AS");
  if (relationship(from, to).has_value())
    throw std::invalid_argument("duplicate link " + std::to_string(from) + "-" +
                                std::to_string(to));
  adjacency_[from_it->second].emplace_back(to, rel);
  adjacency_[to_it->second].emplace_back(from, reverse(rel));
  ++link_count_;
}

const AsInfo& Topology::info(bgp::Asn asn) const {
  auto it = as_index_.find(asn);
  if (it == as_index_.end()) throw std::invalid_argument("unknown AS " + std::to_string(asn));
  return infos_[it->second];
}

const std::vector<std::pair<bgp::Asn, Relationship>>& Topology::neighbors(bgp::Asn asn) const {
  auto it = as_index_.find(asn);
  if (it == as_index_.end()) throw std::invalid_argument("unknown AS " + std::to_string(asn));
  return adjacency_[it->second];
}

std::optional<Relationship> Topology::relationship(bgp::Asn from, bgp::Asn to) const {
  for (const auto& [neighbor, rel] : neighbors(from))
    if (neighbor == to) return rel;
  return std::nullopt;
}

std::vector<bgp::Asn> Topology::all_asns() const {
  std::vector<bgp::Asn> out;
  out.reserve(infos_.size());
  for (const auto& info : infos_) out.push_back(info.asn);
  return out;
}

std::set<bgp::Asn> Topology::customer_cone(bgp::Asn asn) const {
  std::set<bgp::Asn> cone;
  std::vector<bgp::Asn> frontier{asn};
  while (!frontier.empty()) {
    const bgp::Asn current = frontier.back();
    frontier.pop_back();
    for (const auto& [neighbor, rel] : neighbors(current)) {
      if (rel != Relationship::kCustomer) continue;
      if (cone.insert(neighbor).second) frontier.push_back(neighbor);
    }
  }
  cone.erase(asn);
  return cone;
}

Topology generate_hierarchical(const GeneratorParams& params, netbase::Rng& rng) {
  Topology topo;
  std::vector<bgp::Asn> tier1, tier2, tier3;
  bgp::Asn next_asn = params.first_asn;

  for (int i = 0; i < params.tier1_count; ++i) {
    tier1.push_back(next_asn);
    topo.add_as({next_asn++, 1, "T1-" + std::to_string(i)});
  }
  for (int i = 0; i < params.tier2_count; ++i) {
    tier2.push_back(next_asn);
    topo.add_as({next_asn++, 2, "T2-" + std::to_string(i)});
  }
  for (int i = 0; i < params.tier3_count; ++i) {
    tier3.push_back(next_asn);
    topo.add_as({next_asn++, 3, "T3-" + std::to_string(i)});
  }

  // Tier-1 clique: mutual settlement-free peering.
  for (std::size_t i = 0; i < tier1.size(); ++i)
    for (std::size_t j = i + 1; j < tier1.size(); ++j)
      topo.add_link(tier1[i], tier1[j], Relationship::kPeer);

  // Tier-2s buy transit from 1..k Tier-1s.
  for (bgp::Asn asn : tier2) {
    const int uplinks = static_cast<int>(
        rng.uniform_int(params.tier2_providers_min, params.tier2_providers_max));
    std::vector<bgp::Asn> candidates = tier1;
    rng.shuffle(candidates);
    for (int u = 0; u < uplinks && u < static_cast<int>(candidates.size()); ++u)
      topo.add_link(candidates[static_cast<std::size_t>(u)], asn, Relationship::kCustomer);
  }

  // Lateral Tier-2 peering.
  for (std::size_t i = 0; i < tier2.size(); ++i)
    for (std::size_t j = i + 1; j < tier2.size(); ++j)
      if (rng.chance(params.tier2_peering_probability))
        topo.add_link(tier2[i], tier2[j], Relationship::kPeer);

  // Stubs buy transit from 1..k Tier-2s (occasionally a Tier-1).
  for (bgp::Asn asn : tier3) {
    const int uplinks = static_cast<int>(
        rng.uniform_int(params.tier3_providers_min, params.tier3_providers_max));
    std::vector<bgp::Asn> candidates = tier2;
    rng.shuffle(candidates);
    for (int u = 0; u < uplinks && u < static_cast<int>(candidates.size()); ++u)
      topo.add_link(candidates[static_cast<std::size_t>(u)], asn, Relationship::kCustomer);
    if (!tier1.empty() && rng.chance(params.tier3_multihome_tier1_probability))
      topo.add_link(tier1[rng.index(tier1.size())], asn, Relationship::kCustomer);
  }

  return topo;
}

}  // namespace zombiescope::topology

// simnet/faults.hpp — fault-injection models.
//
// BGP zombies are born when a withdrawal fails to take effect
// somewhere. The literature the paper cites offers several concrete
// mechanisms; each is modelled here:
//
//  * WithdrawalSuppression — a router "fails to propagate the
//    withdrawal further" (paper Fig. 1 step 2/3): the withdrawal that
//    router X would send to neighbor Y is lost. Downstream keeps the
//    stale route.
//  * ReceiveStall — the zero-sized TCP window bug (Cartwright-Cox
//    2021, RFC 9687 motivation): a router stops reading from a
//    session for a while; every update sent during the stall is
//    never processed.
//  * Session resets — scheduled on links; both ends flush and then
//    re-advertise. A reset downstream of an infected router
//    re-announces stuck prefixes — the paper's *resurrection*
//    mechanism ("if a downstream session of an infected router is
//    reset, new announcements are generated for these stuck
//    prefixes").

#pragma once

#include <cstdint>
#include <optional>

#include "bgp/types.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"

namespace zombiescope::simnet {

/// Time window helper; an unset end means "forever".
struct TimeWindow {
  netbase::TimePoint start = 0;
  std::optional<netbase::TimePoint> end;

  bool contains(netbase::TimePoint t) const {
    return t >= start && (!end.has_value() || t < *end);
  }
};

/// Drops withdrawals sent by `from_asn` to `to_asn`.
struct WithdrawalSuppression {
  bgp::Asn from_asn = 0;
  /// 0 = all neighbors of from_asn.
  bgp::Asn to_asn = 0;
  /// Restrict to prefixes covered by this prefix; unset = all.
  std::optional<netbase::Prefix> prefix_filter;
  TimeWindow window;
  /// Probability that each matching withdrawal is dropped.
  double probability = 1.0;
};

/// `asn` stops processing messages arriving from `from_asn`
/// (0 = everyone) during the window. BGP sessions are per address
/// family in practice (v4-transport and v6-transport sessions), so a
/// stall may be restricted to one family.
struct ReceiveStall {
  bgp::Asn asn = 0;
  bgp::Asn from_asn = 0;
  TimeWindow window;
  std::optional<netbase::AddressFamily> family;
};

}  // namespace zombiescope::simnet

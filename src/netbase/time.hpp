// netbase/time.hpp — simulation time and UTC calendar helpers.
//
// The whole library runs on a single monotonic simulated clock counted
// in seconds since the Unix epoch (UTC). MRT timestamps, beacon
// schedules, the Aggregator clock, and the prefix BGP-clocks all need
// civil-time decomposition, which std::chrono in libstdc++ 12 supports
// but verbosely; these helpers keep call sites small and explicit.

#pragma once

#include <cstdint>
#include <string>

namespace zombiescope::netbase {

/// Seconds since the Unix epoch (UTC). Signed: durations and
/// differences are first-class.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;

/// A broken-down UTC civil time.
struct CivilTime {
  int year = 1970;
  int month = 1;   // 1..12
  int day = 1;     // 1..31
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59

  friend auto operator<=>(const CivilTime&, const CivilTime&) = default;
};

/// Converts a civil UTC time to seconds since the epoch.
/// Throws std::invalid_argument for out-of-range fields.
TimePoint from_civil(const CivilTime& civil);

/// Convenience: from_civil({y, m, d, hh, mm, ss}).
TimePoint utc(int year, int month, int day, int hour = 0, int minute = 0, int second = 0);

/// Converts seconds since the epoch to broken-down UTC time.
CivilTime to_civil(TimePoint t);

/// The instant of midnight UTC on the first day of t's month — the
/// reference point of the RIS beacon Aggregator clock.
TimePoint start_of_month(TimePoint t);

/// Midnight UTC of t's day.
TimePoint start_of_day(TimePoint t);

/// "2024-06-21 19:49:00" (UTC, fixed width).
std::string format_utc(TimePoint t);

/// "2024-06-21" (UTC date only).
std::string format_date(TimePoint t);

/// Formats a duration compactly: "90m", "3h", "4.5d", "262d".
std::string format_duration(Duration d);

}  // namespace zombiescope::netbase

#include "beacon/schedule.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace zombiescope::beacon {

using netbase::CivilTime;
using netbase::Prefix;
using netbase::TimePoint;

RisBeaconSchedule RisBeaconSchedule::classic() {
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 13; ++i)
    prefixes.push_back(Prefix::parse("84.205." + std::to_string(64 + i) + ".0/24"));
  for (int i = 0; i < 14; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "fe%02x", i);
    prefixes.push_back(Prefix::parse("2001:7fb:" + std::string(buf) + "::/48"));
  }
  return RisBeaconSchedule(std::move(prefixes));
}

std::vector<BeaconEvent> RisBeaconSchedule::events(TimePoint start, TimePoint end) const {
  std::vector<BeaconEvent> out;
  // Announcements happen at 00:00, 04:00, ..., 20:00 UTC.
  TimePoint first = netbase::start_of_day(start);
  while (first < start) first += kPeriod;
  for (TimePoint t = first; t < end; t += kPeriod) {
    for (const auto& prefix : prefixes_) out.push_back({prefix, t, t + kUpTime, false});
  }
  return out;
}

LongLivedBeaconSchedule LongLivedBeaconSchedule::paper_deployment(Approach approach) {
  return LongLivedBeaconSchedule(approach, Prefix::parse("2a0d:3dc1::/32"));
}

Prefix LongLivedBeaconSchedule::prefix_for(TimePoint slot_time) const {
  if (slot_time % kSlot != 0)
    throw std::invalid_argument("beacon slot must be on a 15-minute boundary");
  const CivilTime c = netbase::to_civil(slot_time);

  std::uint16_t hextet = 0;
  if (approach_ == Approach::kDaily) {
    // "(HHMM)": the wall-clock digits, read as hexadecimal digits.
    hextet = static_cast<std::uint16_t>(((c.hour / 10) << 12) | ((c.hour % 10) << 8) |
                                        ((c.minute / 10) << 4) | (c.minute % 10));
  } else {
    // "(HH)(minute+day%15)": decimal renderings concatenated *without
    // padding*, then read as hex — the paper's footnote-3 bug: on some
    // days two slots collide (e.g. 2024-06-15 00:30 and 03:00 both map
    // to 2a0d:3dc1:30::/48).
    const int suffix = c.minute + c.day % 15;
    const std::string text = std::to_string(c.hour) + std::to_string(suffix);
    std::uint16_t value = 0;
    for (char ch : text) value = static_cast<std::uint16_t>(value * 16 + (ch - '0'));
    hextet = value;
  }

  auto bytes = covering_.address().bytes();
  bytes[4] = static_cast<std::uint8_t>(hextet >> 8);
  bytes[5] = static_cast<std::uint8_t>(hextet & 0xff);
  return Prefix(netbase::IpAddress::v6(bytes), 48);
}

std::vector<BeaconEvent> LongLivedBeaconSchedule::events(TimePoint start, TimePoint end) const {
  std::vector<BeaconEvent> out;
  TimePoint first = start;
  if (first % kSlot != 0) first += kSlot - (first % kSlot);
  for (TimePoint t = first; t < end; t += kSlot)
    out.push_back({prefix_for(t), t, t + kUpTime, false});

  if (approach_ == Approach::kFifteenDay) {
    // Same-day collisions: the paper studies only the latter slot.
    std::map<std::pair<TimePoint, Prefix>, std::size_t> last_index;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto key = std::make_pair(netbase::start_of_day(out[i].announce_time),
                                      out[i].prefix);
      auto it = last_index.find(key);
      if (it != last_index.end()) {
        out[it->second].superseded = true;
        it->second = i;
      } else {
        last_index.emplace(key, i);
      }
    }
  }
  return out;
}

}  // namespace zombiescope::beacon

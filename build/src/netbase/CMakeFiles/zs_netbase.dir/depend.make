# Empty dependencies file for zs_netbase.
# This may be replaced when dependencies are built.

// replicate_ris — a compact version of the §3 replication pipeline:
// RIS beacons on a 4-hour cycle, a stalled transit AS creating a
// multi-interval zombie, and the Aggregator-clock deduplication at
// work (with the decoded clocks printed, as in the paper's worked
// example).
//
// Build & run:  ./build/examples/replicate_ris

#include <cstdio>

#include "beacon/driver.hpp"
#include "collector/collector.hpp"
#include "netbase/rng.hpp"
#include "scenarios/common.hpp"
#include "zombie/interval_detector.hpp"

using namespace zombiescope;

int main() {
  topology::GeneratorParams params;
  params.tier1_count = 4;
  params.tier2_count = 12;
  params.tier3_count = 40;
  netbase::Rng rng(20180719);
  auto topo = topology::generate_hierarchical(params, rng);
  std::vector<bgp::Asn> tier2, stubs;
  for (bgp::Asn asn : topo.all_asns()) {
    if (topo.info(asn).tier == 2) tier2.push_back(asn);
    if (topo.info(asn).tier == 3) stubs.push_back(asn);
  }
  const bgp::Asn origin = 12654;  // the RIS beacon AS
  topo.add_as({origin, 3, "RIS-beacons"});
  topo.add_link(tier2[0], origin, topology::Relationship::kCustomer);
  topo.add_link(tier2[1], origin, topology::Relationship::kCustomer);

  simnet::Simulation sim(topo, simnet::SimConfig{}, rng.fork());
  collector::Collector rrc("rrc00", 12654, netbase::IpAddress::parse("193.0.4.28"));
  for (int i = 0; i < 6; ++i) {
    collector::SessionConfig session;
    session.peer_asn = stubs[static_cast<std::size_t>(i * 5)];
    session.peer_address = scenarios::peer_address_for(session.peer_asn, i, i % 2 == 0);
    rrc.add_peer(sim, session, rng.fork());
  }

  // One transit AS goes deaf for ~a day: every monitored customer that
  // routes through it re-surfaces the stale routes interval after
  // interval — with the ORIGINAL Aggregator clock.
  const auto start = netbase::utc(2018, 7, 19);
  simnet::ReceiveStall stall;
  stall.asn = tier2[2];
  stall.window = {start + 4 * netbase::kHour + 30 * netbase::kMinute,
                  start + 28 * netbase::kHour};
  sim.add_receive_stall(stall);

  // Two days of the classic RIS schedule (announce every 4h, withdraw
  // +2h), Aggregator clock stamped at origination.
  const auto schedule = beacon::RisBeaconSchedule::classic();
  beacon::BeaconDriver driver(sim, origin, /*with_aggregator_clock=*/true);
  driver.drive(schedule.events(start, start + 2 * netbase::kDay));
  sim.run_until(start + 2 * netbase::kDay + 6 * netbase::kHour);

  const auto archive = scenarios::through_mrt_codec(rrc.updates());
  zombie::IntervalZombieDetector detector({});
  const auto result = detector.detect(archive, driver.ground_truth());

  std::printf("archived records: %zu | visible <beacon, interval> pairs: %d\n\n",
              archive.size(), result.visible_prefixes);
  std::printf("outbreaks with double-counting:    %zu\n",
              result.outbreaks_with_duplicates.size());
  std::printf("outbreaks without double-counting: %zu\n\n",
              result.outbreaks_deduplicated.size());

  std::printf("duplicate zombies caught by the Aggregator clock (first 10):\n");
  int shown = 0;
  for (const auto& route : result.routes) {
    if (!route.duplicate || ++shown > 10) continue;
    std::printf("  %-18s interval %s: stuck announcement originated %s -> duplicate\n",
                route.prefix.to_string().c_str(),
                netbase::format_utc(route.interval_start).c_str(),
                route.aggregator_time.has_value()
                    ? netbase::format_utc(*route.aggregator_time).c_str()
                    : "?");
  }
  if (shown == 0) std::printf("  (none this run)\n");
  return 0;
}

// wire/retention.hpp — graceful-restart stale-path retention.
//
// The canonical zombie-manufacturing primitive. Under RFC 4724 a
// receiving speaker that negotiated graceful restart does NOT flush a
// peer's routes when the session drops: it marks them stale and keeps
// forwarding on them until the peer returns and re-syncs (End-of-RIB)
// or the restart time runs out. RFC 9494-family long-lived graceful
// restart (LLGR) extends the window from seconds to hours or days.
// Every route the origin withdrew while the session was down is, for
// the duration of that window, indistinguishable from a paper-§4
// zombie: present in the RIB, absent from the origin. This module is
// that window, isolated: a per-session route table with stale marks,
// two retention deadlines, and the three flush paths (End-of-RIB
// sweep, restart-time expiry, LLGR expiry).
//
// Deterministic and clock-free: callers pass `now`, so the scenario
// suite drives it in virtual time while the speaker drives it in wall
// time.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netbase/ip.hpp"
#include "netbase/time.hpp"

namespace zombiescope::wire {

struct RetentionConfig {
  /// Local policy: retain at all when the peer advertised GR.
  bool gr_enabled = false;
  /// Cap on the peer-advertised restart time (seconds); 0 = accept the
  /// peer's value as-is.
  netbase::Duration max_restart_time = 0;
  /// Local policy: honor the peer's LLGR stale time.
  bool llgr_enabled = false;
  /// Cap on the peer-advertised LLGR stale time; 0 = accept as-is.
  netbase::Duration max_llgr_stale_time = 0;
};

enum class FlushReason : std::uint8_t {
  kSessionLoss = 0,     // no GR negotiated: classic session flush
  kEndOfRib = 1,        // peer returned, EOR swept the leftovers
  kRestartExpired = 2,  // restart time ran out before the peer returned
  kLlgrExpired = 3,     // the long-lived stale window ran out too
};

std::string to_string(FlushReason reason);

/// One peer session's retained routes. The owner calls
/// route_announced / route_withdrawn while the session is up, then the
/// session-lifecycle trio (session_down / session_up / end_of_rib) and
/// tick() as time passes; every call that removes routes returns them
/// so the owner can emit the withdrawals the detector must see.
class StaleRetention {
 public:
  explicit StaleRetention(RetentionConfig config) : config_(config) {}

  /// The peer's advertised windows, learned from its OPEN. Both are
  /// clamped by the config caps.
  void set_peer_times(netbase::Duration restart_time,
                      netbase::Duration llgr_stale_time);

  void route_announced(const netbase::Prefix& prefix);
  void route_withdrawn(const netbase::Prefix& prefix);

  /// The session left Established. Returns true when GR retains the
  /// routes (stale marks set, deadlines armed); false when the caller
  /// must flush immediately — in which case the table is cleared.
  bool session_down(netbase::TimePoint now);

  /// The peer reconnected. Stale marks stay; deadlines stop (the
  /// re-sync is now bounded by End-of-RIB, not the restart clock).
  void session_up(netbase::TimePoint now);

  /// End-of-RIB after a reconnect: every route still stale (not
  /// re-announced since session_up) is removed and returned.
  std::vector<netbase::Prefix> end_of_rib();

  /// Deadline processing. When a retention window expires, all stale
  /// routes are removed and returned (flush `reason()` tells which
  /// window it was).
  std::vector<netbase::Prefix> tick(netbase::TimePoint now);

  /// The reason of the most recent flush (valid after a non-empty
  /// session_down-false / end_of_rib / tick result).
  FlushReason last_flush_reason() const { return last_flush_reason_; }

  std::size_t routes() const { return routes_.size(); }
  std::size_t stale_count() const { return stale_count_; }
  bool retaining() const { return retaining_; }
  /// When the current retention window flushes; 0 when not retaining.
  netbase::TimePoint deadline() const { return retaining_ ? deadline_ : 0; }
  netbase::Duration effective_restart_time() const { return restart_time_; }
  netbase::Duration effective_llgr_stale_time() const { return llgr_stale_time_; }

 private:
  std::vector<netbase::Prefix> take_stale();

  RetentionConfig config_;
  netbase::Duration restart_time_ = 0;
  netbase::Duration llgr_stale_time_ = 0;
  std::map<netbase::Prefix, bool> routes_;  // prefix -> stale?
  std::size_t stale_count_ = 0;
  bool retaining_ = false;      // session down, routes held
  bool in_llgr_phase_ = false;  // restart window passed, LLGR window running
  netbase::TimePoint deadline_ = 0;
  FlushReason last_flush_reason_ = FlushReason::kSessionLoss;
};

}  // namespace zombiescope::wire

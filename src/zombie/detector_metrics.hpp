// zombie/detector_metrics.hpp — shared telemetry for the detector
// passes (interval, long-lived, lifespan, noisy-peer filter).
//
// Internal to src/zombie; the metric names are the public contract
// (see DESIGN.md "Observability").

#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace zombiescope::zombie::internal {

/// Handles bound once; every pass shares the same counter family so a
/// snapshot summarizes the whole detection pipeline.
struct DetectorMetrics {
  obs::Counter records_scanned =
      obs::Registry::global().counter("zs_zombie_records_scanned_total");
  obs::Counter candidates =
      obs::Registry::global().counter("zs_zombie_candidates_examined_total");
  obs::Counter outbreaks =
      obs::Registry::global().counter("zs_zombie_outbreaks_confirmed_total");
  obs::Counter routes = obs::Registry::global().counter("zs_zombie_routes_confirmed_total");
  obs::Counter lifespans = obs::Registry::global().counter("zs_zombie_lifespans_total");
  obs::Counter noisy_hits =
      obs::Registry::global().counter("zs_zombie_noisy_filter_hits_total");
  obs::Histogram pass_seconds =
      obs::Registry::global().histogram("zs_zombie_pass_seconds", obs::duration_buckets());
};

inline DetectorMetrics& detector_metrics() {
  static DetectorMetrics metrics;
  return metrics;
}

/// Times one detector pass into the shared wall-time histogram.
class PassTimer {
 public:
  PassTimer() = default;
  PassTimer(const PassTimer&) = delete;
  PassTimer& operator=(const PassTimer&) = delete;
  ~PassTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    detector_metrics().pass_seconds.observe(std::chrono::duration<double>(elapsed).count());
  }

 private:
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

}  // namespace zombiescope::zombie::internal

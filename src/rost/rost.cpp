#include "rost/rost.hpp"

#include <algorithm>

#include "beacon/schedule.hpp"

namespace zombiescope::rost {

void TransparencyLog::publish_announce(const netbase::Prefix& prefix, bgp::Asn origin,
                                       netbase::TimePoint at) {
  log_[{prefix, origin}].push_back({at, true});
  ++publications_;
}

void TransparencyLog::publish_withdraw(const netbase::Prefix& prefix, bgp::Asn origin,
                                       netbase::TimePoint at) {
  log_[{prefix, origin}].push_back({at, false});
  ++publications_;
}

RouteStatus TransparencyLog::status(const netbase::Prefix& prefix, bgp::Asn origin,
                                    netbase::TimePoint at) const {
  auto it = log_.find({prefix, origin});
  if (it == log_.end()) return RouteStatus::kUnknown;
  const netbase::TimePoint visible_until = at - visibility_delay_;
  RouteStatus status = RouteStatus::kUnknown;
  for (const auto& entry : it->second) {
    if (entry.at > visible_until) break;  // entries are appended in time order
    status = entry.announced ? RouteStatus::kAnnounced : RouteStatus::kWithdrawn;
  }
  return status;
}

void publish_events(TransparencyLog& log, bgp::Asn origin,
                    std::span<const beacon::BeaconEvent> events) {
  // Publications happen at the same instants as the BGP actions; sort
  // per key by construction (events are generated in time order per
  // prefix).
  std::vector<const beacon::BeaconEvent*> sorted;
  for (const auto& event : events) sorted.push_back(&event);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->announce_time < b->announce_time;
  });
  for (const auto* event : sorted) {
    log.publish_announce(event->prefix, origin, event->announce_time);
    log.publish_withdraw(event->prefix, origin, event->withdraw_time);
  }
}

void RostAuditor::schedule(netbase::TimePoint start, netbase::TimePoint end) {
  for (netbase::TimePoint t = start; t <= end; t += config_.check_interval)
    sim_.schedule_callback(t, [this] { audit_now(); });
}

void RostAuditor::audit_now() {
  const netbase::TimePoint now = sim_.now();
  for (bgp::Asn asn : enrolled_) {
    // Collect stale prefixes first: evictions mutate the table.
    std::vector<netbase::Prefix> stale;
    for (const auto& [prefix, route] : sim_.router(asn).full_table()) {
      const auto origin = route.path.origin_asn();
      if (!origin.has_value()) continue;  // self-originated or set-terminated
      if (log_.status(prefix, *origin, now) == RouteStatus::kWithdrawn)
        stale.push_back(prefix);
    }
    for (const auto& prefix : stale) {
      if (sim_.evict_prefix(asn, prefix)) ++evictions_;
    }
  }
}

}  // namespace zombiescope::rost

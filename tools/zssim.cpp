// zssim — generates MRT archives from the calibrated scenarios, so the
// zsdetect CLI (and any MRT consumer) has realistic data to chew on.
//
//   zssim ris2018|ris2017oct|ris2017mar|longlived2024 [output-prefix]
//
// Writes <prefix>.updates.mrt (and <prefix>.ribs.mrt for
// longlived2024). Defaults the prefix to the scenario name.

#include <cstdio>
#include <string>

#include "mrt/codec.hpp"
#include "scenarios/longlived2024.hpp"
#include "scenarios/ris_replication.hpp"

using namespace zombiescope;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s ris2018|ris2017oct|ris2017mar|longlived2024 [output-prefix]\n",
                 argv[0]);
    return 2;
  }
  const std::string which = argv[1];
  const std::string prefix = argc > 2 ? argv[2] : which;

  if (which == "longlived2024") {
    scenarios::LongLived2024Spec spec;
    std::fprintf(stderr, "simulating the 2024 beacon experiment (~1 year of RIB dumps)...\n");
    const auto out = scenarios::run_longlived2024(spec);
    mrt::write_file(prefix + ".updates.mrt", out.updates);
    mrt::write_file(prefix + ".ribs.mrt", out.rib_dumps);
    std::printf("wrote %s.updates.mrt (%zu records) and %s.ribs.mrt (%zu records)\n",
                prefix.c_str(), out.updates.size(), prefix.c_str(), out.rib_dumps.size());
    std::printf("detect with:\n  zsdetect --updates %s.updates.mrt --ribs %s.ribs.mrt \\\n"
                "           --schedule fifteen --start 2024-06-10 --end 2024-06-23 "
                "--filter-noisy\n",
                prefix.c_str(), prefix.c_str());
    return 0;
  }

  scenarios::RisPeriodSpec spec;
  if (which == "ris2018") spec = scenarios::period_2018jul();
  else if (which == "ris2017oct") spec = scenarios::period_2017oct();
  else if (which == "ris2017mar") spec = scenarios::period_2017mar();
  else {
    std::fprintf(stderr, "error: unknown scenario '%s'\n", which.c_str());
    return 2;
  }
  std::fprintf(stderr, "simulating RIS period %s...\n", spec.label.c_str());
  const auto out = scenarios::run_ris_period(spec);
  mrt::write_file(prefix + ".updates.mrt", out.updates);
  std::printf("wrote %s.updates.mrt (%zu records)\n", prefix.c_str(), out.updates.size());
  std::printf("detect with:\n  zsdetect --updates %s.updates.mrt --schedule ris \\\n"
              "           --start %s --end %s --filter-noisy --root-cause\n",
              prefix.c_str(), netbase::format_date(spec.start).c_str(),
              netbase::format_date(spec.end).c_str());
  return 0;
}

// bgp/update.hpp — the BGP UPDATE message and its wire codec.
//
// Encoding follows RFC 4271 with two standard extensions used by every
// modern collector feed: 4-byte AS numbers in AS_PATH/AGGREGATOR
// (RFC 6793, as implied by MRT BGP4MP_MESSAGE_AS4 records) and
// multiprotocol reachability for IPv6 NLRI (RFC 4760, MP_REACH_NLRI /
// MP_UNREACH_NLRI).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/attributes.hpp"
#include "netbase/bytes.hpp"
#include "netbase/ip.hpp"

namespace zombiescope::bgp {

/// BGP message types (RFC 4271 §4.1).
enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

/// A BGP UPDATE. IPv4 reachability uses the classic top-level NLRI /
/// withdrawn fields; IPv6 reachability travels in MP_REACH/MP_UNREACH
/// attributes. The codec picks the right container from each prefix's
/// address family automatically.
struct UpdateMessage {
  std::vector<netbase::Prefix> withdrawn;   // any family
  std::vector<netbase::Prefix> announced;   // any family
  PathAttributes attributes;                // meaningful iff !announced.empty()

  bool is_withdrawal_only() const { return announced.empty() && !withdrawn.empty(); }
  bool is_announcement() const { return !announced.empty(); }

  /// Serializes to a full BGP message (16-byte marker, length, type).
  std::vector<std::uint8_t> encode() const;

  /// Parses a full BGP message. Throws netbase::DecodeError on
  /// malformed input. Non-UPDATE messages are rejected.
  static UpdateMessage decode(std::span<const std::uint8_t> wire);

  /// Human-readable one-line summary for debugging / example output.
  std::string summary() const;

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

/// Encodes NLRI prefixes (length byte + packed address bits) into `w`.
void encode_nlri(netbase::ByteWriter& w, std::span<const netbase::Prefix> prefixes);

/// Decodes NLRI until the reader is exhausted.
std::vector<netbase::Prefix> decode_nlri(netbase::ByteReader& r, netbase::AddressFamily family);

/// Attribute-level codec shared with the MRT TABLE_DUMP_V2 encoder,
/// which serializes per-route attribute blobs outside full UPDATEs.
namespace wire {

/// Writes one path attribute (flags/type/length/payload), setting the
/// extended-length flag automatically.
void write_attribute(netbase::ByteWriter& w, std::uint8_t flags, AttrType type,
                     std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_as_path(const AsPath& path);
AsPath decode_as_path(netbase::ByteReader r);

}  // namespace wire

}  // namespace zombiescope::bgp

file(REMOVE_RECURSE
  "CMakeFiles/replicate_ris.dir/replicate_ris.cpp.o"
  "CMakeFiles/replicate_ris.dir/replicate_ris.cpp.o.d"
  "replicate_ris"
  "replicate_ris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicate_ris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rost_test.
# This may be replaced when dependencies are built.

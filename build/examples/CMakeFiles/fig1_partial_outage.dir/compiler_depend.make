# Empty compiler generated dependencies file for fig1_partial_outage.
# This may be replaced when dependencies are built.

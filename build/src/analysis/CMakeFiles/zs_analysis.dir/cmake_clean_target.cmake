file(REMOVE_RECURSE
  "libzs_analysis.a"
)

// scenarios/faultlab.hpp — seeded fault scenarios with exact ground
// truth, for scoring root-cause localization.
//
// Each scenario builds a deterministic palm-tree topology (origin →
// provider chain → branching hub → fans → leaves), announces a beacon,
// withdraws it, and kills the withdrawal on exactly one known link with
// one of the fault models from simnet/faults.hpp. Because the topology
// is a tree, the fault's (from, to) link is the unique ground-truth
// answer: causal localization (zombie/propagation.hpp) must name that
// link exactly, and the palm-tree heuristic (zombie/rootcause.hpp) is
// scored against the culprit AS — exact, off-by-one-upstream (the
// paper's §5.2 caveat: the previous AS may be the one that failed to
// propagate), or wrong. tools/zsroot aggregates these scores into the
// accuracy table; tests/causal_e2e_test asserts them per scenario.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/simulation.hpp"
#include "zombie/propagation.hpp"
#include "zombie/rootcause.hpp"
#include "zombie/types.hpp"

namespace zombiescope::scenarios {

enum class FaultKind : std::uint8_t {
  kWithdrawalSuppression = 0,  // sender drops the withdrawal (fault at from_asn)
  kReceiveStall = 1,           // receiver never processes it (fault at to_asn)
};

std::string to_string(FaultKind kind);

/// One seeded fault scenario. The topology is: origin, a provider
/// chain of `chain_len` ASes above it, a hub above the chain, `fanout`
/// fan ASes (hub customers), each with `leaves_per_fan` leaf
/// customers. The fault is injected on the last chain link — the one
/// entering the hub — so the withdrawal dies exactly where the palm
/// tree branches.
struct FaultScenarioSpec {
  std::uint64_t seed = 0;
  FaultKind kind = FaultKind::kWithdrawalSuppression;
  int chain_len = 2;       // ASes strictly between origin and hub (>= 0)
  int fanout = 3;          // hub customers (>= 2, so the branch point is real)
  int leaves_per_fan = 2;  // customers per fan (>= 0)

  std::string name() const;
};

/// How the palm-tree suspect relates to the ground-truth culprit AS.
enum class RootCauseScore : std::uint8_t {
  kExact = 0,            // suspect == the AS that swallowed the withdrawal
  kOffByOneUpstream = 1, // suspect is the other end of the faulty link
  kWrong = 2,
};

std::string to_string(RootCauseScore score);

struct FaultScenarioResult {
  FaultScenarioSpec spec;
  netbase::Prefix prefix;

  /// Ground truth: the link the fault was injected on (withdrawal
  /// direction: from -> to) and the AS that swallowed the withdrawal.
  bgp::Asn injected_from = 0;
  bgp::Asn injected_to = 0;
  bgp::Asn culprit_asn = 0;

  /// Ground truth zombie set read straight from router state.
  std::vector<bgp::Asn> zombie_asns;
  /// Expected zombie set from the topology (hub + fans + leaves).
  std::vector<bgp::Asn> expected_zombie_asns;

  /// Causal localization over the tracer's hop records.
  zombie::FrontierResult frontier;
  /// True iff the frontier names exactly the injected link and nothing
  /// else.
  bool localized_exact = false;

  /// Palm-tree inference over the zombie routes' AS paths, and its
  /// score against culprit_asn.
  zombie::RootCauseResult rootcause;
  RootCauseScore rootcause_score = RootCauseScore::kWrong;
};

/// Runs one scenario. Resets the global causal tracer, so concurrent
/// users of the tracer in the same process will lose their records.
FaultScenarioResult run_fault_scenario(const FaultScenarioSpec& spec);

/// The default scoring suite: a grid of shapes x both fault kinds x
/// `seeds` seeds. seeds >= 1.
std::vector<FaultScenarioSpec> default_fault_suite(int seeds);

struct FaultSuiteSummary {
  int total = 0;
  int localized_exact = 0;
  int rootcause_exact = 0;
  int rootcause_off_by_one = 0;
  int rootcause_wrong = 0;

  double localization_accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(localized_exact) / total;
  }
  double rootcause_exact_rate() const {
    return total == 0 ? 0.0 : static_cast<double>(rootcause_exact) / total;
  }
  /// Exact or off-by-one — the heuristic named the faulty link.
  double rootcause_link_rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(rootcause_exact + rootcause_off_by_one) / total;
  }
};

FaultSuiteSummary summarize(const std::vector<FaultScenarioResult>& results);

}  // namespace zombiescope::scenarios

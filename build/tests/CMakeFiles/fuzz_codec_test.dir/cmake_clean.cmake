file(REMOVE_RECURSE
  "CMakeFiles/fuzz_codec_test.dir/fuzz_codec_test.cpp.o"
  "CMakeFiles/fuzz_codec_test.dir/fuzz_codec_test.cpp.o.d"
  "fuzz_codec_test"
  "fuzz_codec_test.pdb"
  "fuzz_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

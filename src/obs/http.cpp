#include "obs/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string_view>
#include <thread>

#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace zombiescope::obs {

namespace {

constexpr int kPollIntervalMs = 100;
constexpr int kRequestTimeoutMs = 2000;
constexpr std::size_t kMaxRequestBytes = 8192;

struct Response {
  int status = 200;
  std::string_view content_type = "text/plain; charset=utf-8";
  std::string body;
};

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 501: return "Not Implemented";
    default: return "Bad Request";
  }
}

// Parses "?key=123" style query values; fallback on anything malformed.
std::size_t query_uint(std::string_view target, std::string_view key,
                       std::size_t fallback) {
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) return fallback;
  std::string_view query = target.substr(q + 1);
  const std::string prefix = std::string(key) + "=";
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.rfind(prefix, 0) != 0) continue;
    std::size_t value = 0;
    for (char c : pair.substr(prefix.size())) {
      if (c < '0' || c > '9') return fallback;
      value = value * 10 + static_cast<std::size_t>(c - '0');
      if (value > 1'000'000) return fallback;
    }
    return value == 0 ? fallback : value;
  }
  return fallback;
}

// Raw "?key=value" query lookup (with %xx decoding, so an encoded
// prefix like 203.0.113.0%2F24 works). Empty if absent.
std::string query_string(std::string_view target, std::string_view key) {
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) return {};
  std::string_view query = target.substr(q + 1);
  const std::string prefix = std::string(key) + "=";
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.rfind(prefix, 0) != 0) continue;
    std::string_view raw = pair.substr(prefix.size());
    std::string value;
    value.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '%' && i + 2 < raw.size()) {
        const auto hex = [](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          if (c >= 'A' && c <= 'F') return c - 'A' + 10;
          return -1;
        };
        const int hi = hex(raw[i + 1]);
        const int lo = hex(raw[i + 2]);
        if (hi >= 0 && lo >= 0) {
          value.push_back(static_cast<char>(hi * 16 + lo));
          i += 2;
          continue;
        }
      }
      value.push_back(raw[i] == '+' ? ' ' : raw[i]);
    }
    return value;
  }
  return {};
}

Response route(std::string_view method, std::string_view target) {
  const std::string_view path = target.substr(0, target.find('?'));
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus(Registry::global().snapshot())};
  }
  if (path == "/healthz") {
    std::string body = "{\"status\":\"ok\",\"spans_recorded\":" +
                       std::to_string(Tracer::global().total_recorded()) +
                       ",\"journal_emitted\":" +
                       std::to_string(Journal::global().emitted()) +
                       ",\"journal_dropped\":" +
                       std::to_string(Journal::global().dropped()) + "}\n";
    return {200, "application/json", std::move(body)};
  }
  if (path == "/spans") {
    return {200, "application/json",
            trace_to_json(Tracer::global().snapshot())};
  }
  if (path == "/journal/tail") {
    const std::size_t n = query_uint(target, "n", 256);
    std::uint32_t category_mask = kCatAll;
    if (const std::string categories = query_string(target, "category");
        !categories.empty()) {
      const auto parsed = parse_categories(categories);
      if (!parsed.has_value()) {
        return {400, "text/plain; charset=utf-8",
                "unknown category in ?category=" + categories + "\n"};
      }
      category_mask = *parsed;
    }
    std::string body;
    for (const JournalEvent& event : Journal::global().tail(n)) {
      if ((category_of(event.type) & category_mask) == 0) continue;
      body += to_ndjson(event);
      body += '\n';
    }
    return {200, "application/x-ndjson", std::move(body)};
  }
  if (path == "/causal") {
    // Preprocessor guard (not if constexpr): the CausalTracer type
    // itself only exists when the tracer is compiled in.
#if !ZS_CAUSAL_ENABLED
    return {501, "text/plain; charset=utf-8",
            "causal tracer compiled out (ZS_CAUSAL_ENABLED=0)\n"};
#else
    {
      const std::string prefix_text = query_string(target, "prefix");
      CausalTracer& tracer = CausalTracer::global();
      tracer.drain();
      if (prefix_text.empty()) {
        // Index: which prefixes have traces buffered.
        std::string body;
        for (const netbase::Prefix& prefix : tracer.traced_prefixes()) {
          body += prefix.to_string();
          body += '\n';
        }
        if (body.empty()) body = "no traced prefixes\n";
        return {200, "text/plain; charset=utf-8", std::move(body)};
      }
      const auto prefix = netbase::Prefix::try_parse(prefix_text);
      if (!prefix.has_value()) {
        return {400, "text/plain; charset=utf-8",
                "bad ?prefix=" + prefix_text + "\n"};
      }
      const std::size_t max_traces = query_uint(target, "max_traces", 8);
      return {200, "text/plain; charset=utf-8",
              render_propagation_tree(*prefix, tracer.records_for(*prefix),
                                      max_traces)};
    }
#endif
  }
  if (path == "/profile") {
    if constexpr (!kProfCompiledIn) {
      return {501, "text/plain; charset=utf-8",
              "profiler compiled out (ZS_PROF_ENABLED=0)\n"};
    }
    // On-demand CPU profile: sample for ?seconds=N (default 5, cap 60)
    // and reply with the folded-stack text. Blocking the serving thread
    // is fine — the server is sequential by design, and /profile is an
    // operator action, not a scrape target.
    const std::size_t seconds = std::min<std::size_t>(
        query_uint(target, "seconds", 5), 60);
    Profiler& profiler = Profiler::global();
    if (!profiler.start()) {
      return {409, "text/plain; charset=utf-8",
              "profiler already running (another /profile or --profile-out "
              "session is active)\n"};
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    const ProfileReport report = profiler.stop();
    std::string body = "# zsprof folded stacks; rate " +
                       std::to_string(report.rate_hz) + " Hz, " +
                       std::to_string(report.samples) + " samples over " +
                       std::to_string(seconds) + "s\n" +
                       report.to_folded();
    return {200, "text/plain; charset=utf-8", std::move(body)};
  }
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool HttpServer::start(std::uint16_t port) {
  if (listen_fd_ >= 0) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  m_requests_ = Registry::global().counter("zs_http_requests_total");
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of the request head, a poll-sliced deadline so a
  // stalled client cannot wedge the serving thread.
  std::string request;
  int waited_ms = 0;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes && waited_ms < kRequestTimeoutMs &&
         !stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    waited_ms += kPollIntervalMs;
    if (ready <= 0) continue;
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t head_end = request.find("\r\n\r\n");
  if (head_end == std::string::npos) return;

  // Request line: METHOD SP TARGET SP VERSION
  const std::size_t line_end = request.find("\r\n");
  std::string_view line(request.data(), line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return;
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  Response response = route(method, target);
  requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests_.inc();

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(status_text(response.status)) + "\r\n";
  head += "Content-Type: " + std::string(response.content_type) + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, response.body);
  ::shutdown(fd, SHUT_WR);
}

}  // namespace zombiescope::obs
